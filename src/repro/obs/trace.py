"""Cycle-level event tracing: the simulator's logic analyzer.

The hardware monitor answers "*where* did the cycles go"; the tracer
answers "*when*".  Components emit spans and instants into a bounded
ring buffer — instruction boundaries, microroutine entry/exit, read and
write stalls, TB and cache misses, IB activity, context switches,
interrupts — timestamped in EBOX cycles (the 780's 200 ns microcycle).

Design constraints, in order:

1. **Passive.**  Emitting an event only reads simulator state.  Tracing
   on versus off produces bit-identical histograms and CPI (tests
   assert this).
2. **Near-zero cost when off.**  Tracing is off by default (the
   module-level :data:`TRACING_DEFAULT_OFF` contract): a machine built
   without a tracer stores ``None`` and every instrumentation site is a
   single ``is not None`` test on a locally bound attribute, placed on
   per-instruction or per-event paths — never on the per-microcycle
   path.  The perf gate in ``benchmarks/perf/bench_engine.py`` asserts
   the tracing-off overhead on the BENCH_engine workload stays ≤ 2%.
3. **Bounded.**  The ring keeps the most recent ``capacity`` events and
   counts what it dropped; a runaway trace cannot exhaust memory.

Exports: Chrome trace-event JSON (loadable in Perfetto or
``about://tracing``; one track per pipeline stage) and a compact binary
dump with a string table (:func:`write_binary` / :func:`read_binary`).
"""

from __future__ import annotations

import json
import struct
from collections import deque
from typing import Dict, IO, List, Optional, Tuple, Union

#: The documented default: no tracer is constructed, machines wire
#: ``tracer=None``, and instrumentation sites cost one None-test on an
#: event path.  (A flag rather than a mutable global: enabling tracing
#: means passing a :class:`Tracer` into the run, never flipping shared
#: state that could leak between experiments.)
TRACING_DEFAULT_OFF = True

#: Event phases, Chrome trace-event vocabulary: B(egin)/E(nd) span
#: brackets, X (complete span with duration), I (instant).
PHASE_BEGIN = "B"
PHASE_END = "E"
PHASE_COMPLETE = "X"
PHASE_INSTANT = "I"

#: One track per pipeline stage (plus the OS), rendered as one Chrome
#: "thread" each.  Order fixes the tid assignment, so exports are
#: deterministic.
TRACKS = ("EBOX", "UCODE", "IFETCH", "MEM", "VMS")

#: The 780's microcycle, for converting cycle timestamps to wall-ish
#: time in the Chrome export (ts is in microseconds there).
MICROCYCLE_NS = 200

_BINARY_MAGIC = b"VAXTRACE"
_BINARY_VERSION = 1
#: phase(1) track(1) name-id(2) ts-cycles(8) dur-cycles(8)
_RECORD = struct.Struct("<BBHqq")
_PHASE_CODES = {PHASE_BEGIN: 0, PHASE_END: 1, PHASE_COMPLETE: 2, PHASE_INSTANT: 3}
_PHASE_NAMES = {code: phase for phase, code in _PHASE_CODES.items()}


def tracing_enabled(tracer: Optional["Tracer"]) -> bool:
    """The guard every instrumentation site reduces to."""
    return tracer is not None


class TraceEvent(Tuple):
    """Events are plain tuples ``(phase, track, ts, name, dur, args)``.

    A tuple, not a dataclass: the tracer may record hundreds of
    thousands of these, and emission sits next to the simulator's hot
    paths when tracing is on.
    """


class Tracer:
    """A bounded ring buffer of trace events, cycle-timestamped.

    Components call :meth:`instant`, :meth:`complete`, or the
    :meth:`begin`/:meth:`end` pair; analysis calls :meth:`events`,
    :meth:`to_chrome`, or :func:`write_binary`.
    """

    def __init__(self, capacity: int = 262_144):
        if capacity <= 0:
            raise ValueError("tracer capacity must be positive")
        self.capacity = capacity
        self._events: deque = deque(maxlen=capacity)
        self._emitted = 0
        #: open B spans per track, for well-formedness bookkeeping
        self._open_spans: Dict[str, List[str]] = {track: [] for track in TRACKS}

    # -- emission (the simulator side) ---------------------------------

    def instant(self, track: str, ts: int, name: str, args: Optional[dict] = None) -> None:
        """A point event: a cache miss, a redirect, a context switch."""
        self._emitted += 1
        self._events.append((PHASE_INSTANT, track, ts, name, 0, args))

    def complete(
        self, track: str, ts: int, name: str, dur: int, args: Optional[dict] = None
    ) -> None:
        """A span known only at its end: a stall episode, a miss service."""
        self._emitted += 1
        self._events.append((PHASE_COMPLETE, track, ts, name, dur, args))

    def begin(self, track: str, ts: int, name: str, args: Optional[dict] = None) -> None:
        """Open a span (an instruction, a microroutine) on ``track``."""
        self._emitted += 1
        self._open_spans[track].append(name)
        self._events.append((PHASE_BEGIN, track, ts, name, 0, args))

    def end(self, track: str, ts: int, args: Optional[dict] = None) -> None:
        """Close the innermost open span on ``track``."""
        self._emitted += 1
        name = self._open_spans[track].pop() if self._open_spans[track] else ""
        self._events.append((PHASE_END, track, ts, name, 0, args))

    # -- readout (the analysis side) -----------------------------------

    def events(self) -> List[tuple]:
        """The retained events, oldest first."""
        return list(self._events)

    def __len__(self) -> int:
        return len(self._events)

    @property
    def emitted(self) -> int:
        """Total events emitted, including any the ring dropped."""
        return self._emitted

    @property
    def dropped(self) -> int:
        """Events pushed out of the bounded ring (oldest-first)."""
        return self._emitted - len(self._events)

    def clear(self) -> None:
        self._events.clear()
        self._emitted = 0
        for spans in self._open_spans.values():
            del spans[:]

    # -- Chrome trace-event export -------------------------------------

    def to_chrome(self) -> dict:
        """The Chrome trace-event JSON object (Perfetto/about://tracing).

        One process ("VAX-11/780"), one named thread per pipeline-stage
        track.  ``ts``/``dur`` are microseconds derived from the 200 ns
        microcycle; the raw cycle numbers ride along in ``args``.
        """
        tids = {track: tid for tid, track in enumerate(TRACKS, start=1)}
        trace_events: List[dict] = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": 1,
                "tid": 0,
                "args": {"name": "VAX-11/780"},
            }
        ]
        for track, tid in tids.items():
            trace_events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": 1,
                    "tid": tid,
                    "args": {"name": track},
                }
            )
            trace_events.append(
                {
                    "name": "thread_sort_index",
                    "ph": "M",
                    "pid": 1,
                    "tid": tid,
                    "args": {"sort_index": tid},
                }
            )
        scale = MICROCYCLE_NS / 1000.0  # cycles -> microseconds
        depth = {track: 0 for track in TRACKS}  # drop orphan E's (ring overflow)
        for phase, track, ts, name, dur, args in self._events:
            if phase == PHASE_BEGIN:
                depth[track] += 1
            elif phase == PHASE_END:
                if depth[track] <= 0:
                    continue
                depth[track] -= 1
            event = {
                "name": name,
                "ph": phase,
                "pid": 1,
                "tid": tids[track],
                "ts": round(ts * scale, 4),
            }
            merged_args = {"cycle": ts}
            if args:
                merged_args.update(args)
            if phase == PHASE_COMPLETE:
                event["dur"] = round(dur * scale, 4)
                merged_args["cycles"] = dur
            event["args"] = merged_args
            trace_events.append(event)
        # Close spans still open when the capture ended (mid-instruction
        # stop): synthesize E's at the last timestamp seen on the track.
        last_ts = 0.0
        for event in trace_events:
            if event["ph"] != "M":
                end_ts = event["ts"] + event.get("dur", 0)
                if end_ts > last_ts:
                    last_ts = end_ts
        for track, open_count in depth.items():
            for _ in range(open_count):
                trace_events.append(
                    {"name": "", "ph": "E", "pid": 1, "tid": tids[track], "ts": last_ts, "args": {}}
                )
        return {
            "traceEvents": trace_events,
            "displayTimeUnit": "ns",
            "otherData": {
                "source": "repro-vax780",
                "microcycle_ns": MICROCYCLE_NS,
                "events_emitted": self._emitted,
                "events_dropped": self.dropped,
            },
        }

    def write_chrome(self, destination: Union[str, IO[str]]) -> None:
        """Serialize :meth:`to_chrome` to a path or text file object."""
        payload = self.to_chrome()
        if hasattr(destination, "write"):
            json.dump(payload, destination)
        else:
            with open(destination, "w") as handle:
                json.dump(payload, handle)


# -- compact binary dump -------------------------------------------------


def write_binary(tracer: Tracer, destination: Union[str, IO[bytes]]) -> None:
    """Dump the retained events as a compact binary stream.

    Layout: magic, version, record count, string-table (names), then
    fixed-width records referencing the table.  Per-event ``args`` are
    dropped — this is the bulk format for long captures; use the Chrome
    export when you want the annotations.
    """
    events = tracer.events()
    names: Dict[str, int] = {}
    for _phase, _track, _ts, name, _dur, _args in events:
        if name not in names:
            names[name] = len(names)
    if len(names) > 0xFFFF:
        raise ValueError("too many distinct event names for the binary format")
    table = json.dumps(sorted(names, key=names.get)).encode("utf-8")

    def _write(handle: IO[bytes]) -> None:
        handle.write(_BINARY_MAGIC)
        handle.write(struct.pack("<HII", _BINARY_VERSION, len(events), len(table)))
        handle.write(table)
        track_ids = {track: i for i, track in enumerate(TRACKS)}
        for phase, track, ts, name, dur, _args in events:
            handle.write(
                _RECORD.pack(
                    _PHASE_CODES[phase], track_ids[track], names[name], ts, dur
                )
            )

    if hasattr(destination, "write"):
        _write(destination)
    else:
        with open(destination, "wb") as handle:
            _write(handle)


def read_binary(source: Union[str, IO[bytes]]) -> List[tuple]:
    """Reload :func:`write_binary` output as ``(phase, track, ts, name,
    dur, None)`` tuples — the round-trip counterpart of
    :meth:`Tracer.events`."""

    def _read(handle: IO[bytes]) -> List[tuple]:
        magic = handle.read(len(_BINARY_MAGIC))
        if magic != _BINARY_MAGIC:
            raise ValueError("not a VAXTRACE binary dump")
        version, count, table_len = struct.unpack("<HII", handle.read(10))
        if version != _BINARY_VERSION:
            raise ValueError("unsupported VAXTRACE version {}".format(version))
        names = json.loads(handle.read(table_len).decode("utf-8"))
        events = []
        for _ in range(count):
            phase_code, track_id, name_id, ts, dur = _RECORD.unpack(
                handle.read(_RECORD.size)
            )
            events.append(
                (_PHASE_NAMES[phase_code], TRACKS[track_id], ts, names[name_id], dur, None)
            )
        return events

    if hasattr(source, "read"):
        return _read(source)
    with open(source, "rb") as handle:
        return _read(handle)


# -- validation (used by tests and the trace CLI) ------------------------


def validate_chrome(payload: dict) -> List[str]:
    """Structural checks on a Chrome trace-event object.

    Returns a list of problems (empty means valid): per-track timestamps
    must be monotonically non-decreasing, and every B must pair with an
    E on the same track, properly nested.
    """
    problems: List[str] = []
    if "traceEvents" not in payload:
        return ["missing traceEvents"]
    last_ts: Dict[int, float] = {}
    open_spans: Dict[int, List[str]] = {}
    for index, event in enumerate(payload["traceEvents"]):
        phase = event.get("ph")
        if phase == "M":
            continue
        tid = event.get("tid")
        ts = event.get("ts")
        if not isinstance(ts, (int, float)):
            problems.append("event {} has no numeric ts".format(index))
            continue
        if ts < last_ts.get(tid, float("-inf")):
            problems.append(
                "event {} ts {} regresses on tid {} (last {})".format(
                    index, ts, tid, last_ts[tid]
                )
            )
        last_ts[tid] = ts
        if phase == "B":
            open_spans.setdefault(tid, []).append(event.get("name", ""))
        elif phase == "E":
            if not open_spans.get(tid):
                problems.append("event {} E without open B on tid {}".format(index, tid))
            else:
                open_spans[tid].pop()
        elif phase == "X":
            if event.get("dur", 0) < 0:
                problems.append("event {} has negative dur".format(index))
        elif phase != "I":
            problems.append("event {} has unknown phase {!r}".format(index, phase))
    for tid, spans in open_spans.items():
        for name in spans:
            problems.append("unclosed span {!r} on tid {}".format(name, tid))
    return problems

"""Typed metrics: counters, gauges, histograms, and phase timers.

The reporting edge used to reach straight into ``EventCounters`` and
``MachineStats`` fields; this module gives those reads one typed,
self-describing surface — and adds the dimension the simulator never
had: wall-clock self-profiling (how fast is the *simulation*, phase by
phase), so BENCH JSONs and ``repro stats`` can report
instructions/second and cycles/second alongside the simulated numbers.

Everything is plain data — a snapshot is a JSON-ready dict — and
deterministic given deterministic inputs (timers obviously measure real
wall time; tests treat those fields as > 0, not as exact values).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, List, Optional, Union

Number = Union[int, float]


class MetricTypeError(TypeError):
    """A metric name was re-registered as a different type."""


class Counter:
    """A monotonically increasing count (events, instructions, cycles)."""

    kind = "counter"

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self.value = 0

    def inc(self, amount: Number = 1) -> None:
        if amount < 0:
            raise ValueError("counter {} cannot decrease".format(self.name))
        self.value += amount

    def snapshot(self) -> Number:
        return self.value


class Gauge:
    """A point-in-time value (CPI, instructions/sec, queue depth)."""

    kind = "gauge"

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self.value: Number = 0

    def set(self, value: Number) -> None:
        self.value = value

    def snapshot(self) -> Number:
        return self.value


def percentile(sorted_samples: List[Number], q: Number) -> float:
    """The q-th percentile of an ascending sample list, linearly
    interpolated between order statistics (numpy's default method,
    reimplemented so the toolchain stays stdlib-only)."""
    if not sorted_samples:
        return 0.0
    if len(sorted_samples) == 1:
        return float(sorted_samples[0])
    rank = (q / 100.0) * (len(sorted_samples) - 1)
    low = int(rank)
    high = min(low + 1, len(sorted_samples) - 1)
    fraction = rank - low
    return float(
        sorted_samples[low] + (sorted_samples[high] - sorted_samples[low]) * fraction
    )


class Histogram:
    """A distribution: count / sum / min / max / mean, plus percentiles
    over a bounded sample reservoir.

    Deliberately bucket-free — the micro-PC board is the bucketed
    instrument around here; this class summarizes wall-clock samples
    (phase durations, per-run wall seconds).  The first
    :data:`SAMPLE_CAP` observations are retained verbatim so snapshots
    can report p50/p90/p99 (``repro stats`` renders those, not raw
    moments); keep-first is deterministic where reservoir sampling
    would need a seed, and the metrics here see far fewer observations
    than the cap.
    """

    kind = "histogram"

    #: retained observations per histogram; beyond this, percentiles
    #: describe the first SAMPLE_CAP samples (count/sum/min/max stay
    #: exact).
    SAMPLE_CAP = 4096

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self.count = 0
        self.sum: Number = 0
        self.min: Optional[Number] = None
        self.max: Optional[Number] = None
        self.samples: List[Number] = []

    def observe(self, value: Number) -> None:
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if len(self.samples) < self.SAMPLE_CAP:
            self.samples.append(value)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def percentile(self, q: Number) -> float:
        return percentile(sorted(self.samples), q)

    def snapshot(self) -> Dict[str, Number]:
        ordered = sorted(self.samples)
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.min is not None else 0,
            "max": self.max if self.max is not None else 0,
            "mean": self.mean,
            "p50": percentile(ordered, 50),
            "p90": percentile(ordered, 90),
            "p99": percentile(ordered, 99),
            "samples": list(self.samples),
        }


class MetricsRegistry:
    """Get-or-create registry of typed metrics.

    ``counter`` / ``gauge`` / ``histogram`` return the existing metric
    when the name is already registered (raising
    :class:`MetricTypeError` on a type clash), so instrumentation sites
    never need to coordinate registration order.
    """

    def __init__(self):
        self._metrics: Dict[str, Union[Counter, Gauge, Histogram]] = {}

    def _get_or_create(self, cls, name: str, help: str):
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name, help)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise MetricTypeError(
                "metric {!r} is a {}, requested as {}".format(
                    name, metric.kind, cls.kind
                )
            )
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)

    def histogram(self, name: str, help: str = "") -> Histogram:
        return self._get_or_create(Histogram, name, help)

    @contextmanager
    def timer(self, name: str, help: str = ""):
        """Time a phase into the histogram ``name`` (seconds)."""
        histogram = self.histogram(name, help)
        started = time.perf_counter()
        try:
            yield histogram
        finally:
            histogram.observe(time.perf_counter() - started)

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def snapshot(self) -> Dict[str, Dict]:
        """All metrics as a JSON-ready dict, grouped by kind."""
        grouped: Dict[str, Dict] = {"counters": {}, "gauges": {}, "histograms": {}}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            grouped[metric.kind + "s"][name] = metric.snapshot()
        return grouped

    def merge_snapshot(self, snapshot: Dict[str, Dict]) -> None:
        """Fold a worker's snapshot into this registry.

        Counters add; gauges take the incoming value; histograms fold
        their moments.  This is how per-spec self-profiling collected in
        pool workers aggregates on the coordinator.
        """
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, stats in snapshot.get("histograms", {}).items():
            histogram = self.histogram(name)
            if stats["count"] == 0:
                continue
            histogram.count += stats["count"]
            histogram.sum += stats["sum"]
            if histogram.min is None or stats["min"] < histogram.min:
                histogram.min = stats["min"]
            if histogram.max is None or stats["max"] > histogram.max:
                histogram.max = stats["max"]
            room = Histogram.SAMPLE_CAP - len(histogram.samples)
            if room > 0:
                histogram.samples.extend(stats.get("samples", [])[:room])


#: Names the resilience layer reports through a policy's registry
#: (see :meth:`repro.core.resilience.ResiliencePolicy.record_report`
#: and the sharded executor).  Pre-registered by
#: :func:`resilience_counters` so dashboards see zeros, not absences.
RESILIENCE_COUNTERS = (
    ("engine.retries", "spec retries performed"),
    ("engine.spec_timeouts", "specs that exceeded their wall-clock budget"),
    ("engine.pool_respawns", "process pools respawned after a death or timeout"),
    ("engine.spec_failures", "specs that failed after their whole retry budget"),
    ("engine.quarantined_objects", "corrupt cache objects quarantined"),
    ("engine.repaired_shards", "shards recomputed by the repair chain"),
)


def resilience_counters(registry: Optional[MetricsRegistry] = None) -> MetricsRegistry:
    """Pre-register the engine's fault-tolerance counters at zero."""
    registry = registry if registry is not None else MetricsRegistry()
    for name, help_text in RESILIENCE_COUNTERS:
        registry.counter(name, help_text)
    registry.gauge(
        "engine.degraded", "1 when a sweep fell back to in-process execution"
    )
    return registry


def registry_from_result(result, registry: Optional[MetricsRegistry] = None) -> MetricsRegistry:
    """Expose an :class:`~repro.core.experiment.ExperimentResult` through
    the metrics surface — the typed replacement for ad-hoc
    ``EventCounters``/``MachineStats`` field reads at the reporting edge
    (``repro stats`` renders exactly this).
    """
    registry = registry if registry is not None else MetricsRegistry()
    events = result.events
    stats = result.stats
    reduction = result.reduction

    registry.gauge("sim.cpi", "cycles per average instruction").set(result.cpi)
    registry.counter("sim.instructions", "measured instructions").inc(
        reduction.instructions
    )
    registry.counter("sim.cycles", "measured cycles (both banks)").inc(
        int(reduction.total_cycles)
    )
    for column, cycles in reduction.column_totals().items():
        registry.counter(
            "sim.cycles.{}".format(column), "cycles in the {} column".format(column)
        ).inc(int(cycles))

    registry.counter("events.interrupts_delivered").inc(events.interrupts_delivered)
    registry.counter("events.context_switches").inc(events.context_switches)
    registry.counter("events.page_faults").inc(events.page_faults)
    registry.counter("events.branch_displacements").inc(events.branch_displacements)
    registry.counter("events.instruction_bytes").inc(events.instruction_bytes)

    registry.counter("machine.ib_references").inc(stats.ib_references)
    registry.counter("machine.cache_read_hits").inc(stats.cache_read_hits)
    registry.counter("machine.cache_read_misses").inc(stats.cache_read_misses)
    registry.counter("machine.cache_write_hits").inc(stats.cache_write_hits)
    registry.counter("machine.cache_write_misses").inc(stats.cache_write_misses)
    registry.counter("machine.tb_hits").inc(stats.tb_hits)
    registry.counter("machine.tb_misses").inc(stats.tb_misses)
    registry.counter("machine.write_buffer_writes").inc(stats.write_buffer_writes)
    registry.counter("machine.write_buffer_stall_cycles").inc(
        stats.write_buffer_stall_cycles
    )
    registry.counter("machine.sbi_reads").inc(stats.sbi_reads)
    registry.counter("machine.sbi_writes").inc(stats.sbi_writes)

    instructions = max(1, reduction.instructions)
    registry.gauge("sim.cache_read_misses_per_instruction").set(
        stats.cache_read_misses / instructions
    )
    registry.gauge("sim.tb_misses_per_instruction").set(stats.tb_misses / instructions)
    return registry

"""Indexed trace store + filter/aggregate query engine.

The paper's method is asking precise questions of a measured machine —
"how many stall cycles came from specifier decode?" — and the Chrome
export answers none of them without loading the whole capture into a
viewer.  This module makes traces *queryable*:

* :func:`write_store` — the VAXTRACE **v2** on-disk format: fixed-width
  records written in segments, with a JSON footer indexing each
  segment's track set, name set and cycle range.  A query plans against
  the footer and seeks straight to the segments that can match; the
  rest of the file is never read.
* :func:`open_store` — reads v2 natively and falls back to the v1
  reader (:func:`repro.obs.trace.read_binary`) for old captures, so
  every trace ever written stays queryable.
* :class:`TraceQuery` — ``TraceQuery(trace).where(track="MEM",
  name_contains="stall").sum("cycles")`` / ``.histogram()`` /
  ``.group_by("routine")`` over a store, a live
  :class:`~repro.obs.trace.Tracer`, a compile-event
  :class:`~repro.obs.channel.EventChannel`, or a plain event list.
* :func:`parse_query` — the mini-language behind ``repro query``:
  ``"stall cycles where track=MEM and routine=SPEC_FETCH"``.

Records carry one categorical annotation (``aux``) distilled from the
event's args at write time — the micro-routine for stalls, the
addressing mode for specifier spans, the reason for compile-lifecycle
events — which is what makes ``routine=`` and ``reason=`` filters work
on the binary format (v1 dropped args entirely).
"""

from __future__ import annotations

import json
import struct
from typing import Dict, Iterable, Iterator, List, NamedTuple, Optional, Tuple, Union

from repro.obs.trace import (
    PHASE_BEGIN,
    PHASE_COMPLETE,
    PHASE_END,
    PHASE_INSTANT,
    TRACKS,
    Tracer,
    read_binary,
)

_MAGIC = b"VAXTRACE"
STORE_VERSION = 2
#: phase(1) track(1) name-id(2) aux-id(2) ts-cycles(8) dur-cycles(8)
_RECORD_V2 = struct.Struct("<BBHHqq")
_HEADER = struct.Struct("<H")  # version, directly after the magic
_TRAILER = struct.Struct("<Q")  # footer offset, before the closing magic
_PHASE_CODES = {PHASE_BEGIN: 0, PHASE_END: 1, PHASE_COMPLETE: 2, PHASE_INSTANT: 3}
_PHASE_NAMES = {code: phase for phase, code in _PHASE_CODES.items()}

#: Records per segment.  Small enough that a selective query touches a
#: sliver of a long capture, large enough that the footer stays tiny
#: (a 1M-event trace indexes in ~256 segment entries).
DEFAULT_SEGMENT_RECORDS = 4096

#: args keys mined for the aux annotation, in priority order.
_AUX_KEYS = ("routine", "reason", "mode", "process", "cause")


class QueryError(ValueError):
    """A malformed query, an unknown key, or an unreadable store."""


class Record(NamedTuple):
    """One normalized trace record — the query engine's row type."""

    phase: str
    track: str
    ts: int
    name: str
    dur: int
    aux: str


def _aux_of(args: Optional[dict]) -> str:
    if not args:
        return ""
    for key in _AUX_KEYS:
        value = args.get(key)
        if value:
            return str(value)
    return ""


def normalize(events: Iterable[tuple]) -> Iterator[Record]:
    """Tracer-shaped ``(phase, track, ts, name, dur, args)`` tuples as
    :class:`Record` rows, distilling args into the aux column."""
    for phase, track, ts, name, dur, args in events:
        yield Record(phase, track, ts, name, dur, _aux_of(args))


# ---------------------------------------------------------------------------
# the v2 store: writer
# ---------------------------------------------------------------------------


def write_store(
    source: Union[Tracer, Iterable[tuple]],
    destination: str,
    meta: Optional[dict] = None,
    segment_records: int = DEFAULT_SEGMENT_RECORDS,
    extra_events: Optional[Iterable[tuple]] = None,
) -> dict:
    """Write a VAXTRACE v2 store; returns the footer that was written.

    ``source`` is a :class:`Tracer` or an iterable of tracer-shaped
    tuples; ``extra_events`` (e.g. an
    :class:`~repro.obs.channel.EventChannel`'s
    :meth:`~repro.obs.channel.EventChannel.to_trace_events`) are merged
    in by timestamp — this is how a capture archives the compile
    lifecycle next to the pipeline events.
    """
    dropped = 0
    if isinstance(source, Tracer):
        dropped = source.dropped
        events = source.events()
    else:
        events = list(source)
    if extra_events is not None:
        events = sorted(
            list(events) + list(extra_events), key=lambda event: event[2]
        )
    if segment_records <= 0:
        raise ValueError("segment_records must be positive")

    tracks: List[str] = list(TRACKS)
    track_ids = {track: i for i, track in enumerate(tracks)}
    names: Dict[str, int] = {}
    auxes: Dict[str, int] = {"": 0}

    def intern(table: Dict[str, int], value: str, what: str) -> int:
        ident = table.get(value)
        if ident is None:
            ident = len(table)
            if ident > 0xFFFF:
                raise ValueError(
                    "too many distinct {} for the store format".format(what)
                )
            table[value] = ident
        return ident

    segments: List[dict] = []
    with open(destination, "wb") as handle:
        handle.write(_MAGIC)
        handle.write(_HEADER.pack(STORE_VERSION))
        pending: List[bytes] = []
        seg = None

        def flush() -> None:
            nonlocal seg
            if seg is None:
                return
            seg["tracks"] = sorted(seg["tracks"])
            seg["names"] = sorted(seg["names"])
            segments.append(seg)
            handle.write(b"".join(pending))
            del pending[:]
            seg = None

        for record in normalize(events):
            if seg is None:
                seg = {
                    "offset": handle.tell(),
                    "count": 0,
                    "ts_min": record.ts,
                    "ts_max": record.ts,
                    "tracks": set(),
                    "names": set(),
                }
            track_id = track_ids.get(record.track)
            if track_id is None:
                track_id = len(tracks)
                if track_id > 0xFF:
                    raise ValueError("too many distinct tracks for the store format")
                tracks.append(record.track)
                track_ids[record.track] = track_id
            name_id = intern(names, record.name, "event names")
            aux_id = intern(auxes, record.aux, "aux annotations")
            pending.append(
                _RECORD_V2.pack(
                    _PHASE_CODES[record.phase],
                    track_id,
                    name_id,
                    aux_id,
                    record.ts,
                    record.dur,
                )
            )
            seg["count"] += 1
            seg["ts_min"] = min(seg["ts_min"], record.ts)
            seg["ts_max"] = max(seg["ts_max"], record.ts)
            seg["tracks"].add(track_id)
            seg["names"].add(name_id)
            if seg["count"] >= segment_records:
                flush()
        flush()

        footer = {
            "version": STORE_VERSION,
            "tracks": tracks,
            "names": sorted(names, key=names.get),
            "aux": sorted(auxes, key=auxes.get),
            "segments": segments,
            "record_count": sum(entry["count"] for entry in segments),
            "dropped": dropped,
            "meta": meta or {},
        }
        footer_offset = handle.tell()
        handle.write(json.dumps(footer, separators=(",", ":")).encode("utf-8"))
        handle.write(_TRAILER.pack(footer_offset))
        handle.write(_MAGIC)
    return footer


# ---------------------------------------------------------------------------
# the v2 store: reader
# ---------------------------------------------------------------------------


class TraceStore:
    """A queryable trace: either an indexed v2 file (seekable; queries
    scan only the segments whose footer entry can match) or an
    in-memory event list (v1 fallback, live tracers)."""

    def __init__(
        self,
        path: Optional[str] = None,
        footer: Optional[dict] = None,
        records: Optional[List[Record]] = None,
    ):
        self.path = path
        self._footer = footer
        self._records = records
        #: segments whose bytes the last iteration actually read — the
        #: observable effect of index pruning (tests assert on it).
        self.segments_scanned = 0

    # -- construction ---------------------------------------------------

    @classmethod
    def from_events(cls, events: Iterable[tuple]) -> "TraceStore":
        return cls(records=list(normalize(events)))

    # -- metadata -------------------------------------------------------

    @property
    def indexed(self) -> bool:
        return self._footer is not None

    @property
    def version(self) -> int:
        return self._footer["version"] if self._footer else 0

    @property
    def meta(self) -> dict:
        return dict(self._footer.get("meta", {})) if self._footer else {}

    @property
    def dropped(self) -> int:
        return int(self._footer.get("dropped", 0)) if self._footer else 0

    @property
    def footer(self) -> dict:
        """The index footer (empty for in-memory / v1 sources)."""
        return dict(self._footer) if self._footer else {}

    @property
    def tracks(self) -> List[str]:
        if self._footer:
            return list(self._footer["tracks"])
        return sorted({record.track for record in self._records or []})

    @property
    def names(self) -> List[str]:
        if self._footer:
            return list(self._footer["names"])
        return sorted({record.name for record in self._records or []})

    @property
    def segments(self) -> List[dict]:
        return list(self._footer["segments"]) if self._footer else []

    def __len__(self) -> int:
        if self._footer:
            return int(self._footer["record_count"])
        return len(self._records or [])

    # -- iteration ------------------------------------------------------

    def iter_records(
        self,
        tracks: Optional[set] = None,
        names: Optional[set] = None,
        ts_min: Optional[int] = None,
        ts_max: Optional[int] = None,
    ) -> Iterator[Record]:
        """Yield records, pruning non-matching segments via the index.

        The hint sets are an *over*-approximation: every yielded record
        still passes through the query's exact filters — the index only
        decides which file regions are worth reading.
        """
        self.segments_scanned = 0
        if self._footer is None:
            for record in self._records or []:
                yield record
            return
        footer = self._footer
        track_names = footer["tracks"]
        name_table = footer["names"]
        aux_table = footer["aux"]
        track_ids = (
            {i for i, t in enumerate(track_names) if t in tracks}
            if tracks is not None
            else None
        )
        name_ids = (
            {i for i, n in enumerate(name_table) if n in names}
            if names is not None
            else None
        )
        if track_ids is not None and not track_ids:
            return
        if name_ids is not None and not name_ids:
            return
        with open(self.path, "rb") as handle:
            for seg in footer["segments"]:
                if ts_min is not None and seg["ts_max"] < ts_min:
                    continue
                if ts_max is not None and seg["ts_min"] > ts_max:
                    continue
                if track_ids is not None and not track_ids.intersection(seg["tracks"]):
                    continue
                if name_ids is not None and not name_ids.intersection(seg["names"]):
                    continue
                self.segments_scanned += 1
                handle.seek(seg["offset"])
                blob = handle.read(seg["count"] * _RECORD_V2.size)
                for fields in _RECORD_V2.iter_unpack(blob):
                    phase_code, track_id, name_id, aux_id, ts, dur = fields
                    yield Record(
                        _PHASE_NAMES[phase_code],
                        track_names[track_id],
                        ts,
                        name_table[name_id],
                        dur,
                        aux_table[aux_id],
                    )


def open_store(path: str) -> TraceStore:
    """Open any VAXTRACE capture: v2 natively (indexed), v1 via the
    legacy reader (materialized in memory, aux empty)."""
    with open(path, "rb") as handle:
        magic = handle.read(len(_MAGIC))
        if magic != _MAGIC:
            raise QueryError("not a VAXTRACE capture: {}".format(path))
        (version,) = _HEADER.unpack(handle.read(_HEADER.size))
        if version != STORE_VERSION:
            # v1 wrote "<HII" here; the first half-word is the version.
            return TraceStore(records=list(normalize(read_binary(path))))
        handle.seek(-(_TRAILER.size + len(_MAGIC)), 2)
        trailer = handle.read(_TRAILER.size + len(_MAGIC))
        if trailer[_TRAILER.size:] != _MAGIC:
            raise QueryError("truncated VAXTRACE v2 store: {}".format(path))
        (footer_offset,) = _TRAILER.unpack(trailer[: _TRAILER.size])
        handle.seek(footer_offset)
        end = handle.seek(0, 2) - (_TRAILER.size + len(_MAGIC))
        handle.seek(footer_offset)
        footer = json.loads(handle.read(end - footer_offset).decode("utf-8"))
    return TraceStore(path=path, footer=footer)


# ---------------------------------------------------------------------------
# the query engine
# ---------------------------------------------------------------------------

Source = Union[TraceStore, Tracer, Iterable[tuple]]

#: group_by keys -> Record attribute
_GROUP_KEYS = {
    "name": "name",
    "track": "track",
    "phase": "phase",
    "aux": "aux",
    "routine": "aux",
    "reason": "aux",
}


def _as_store(source: Source) -> TraceStore:
    if isinstance(source, TraceStore):
        return source
    if isinstance(source, Tracer):
        return TraceStore.from_events(source.events())
    if hasattr(source, "to_trace_events"):  # EventChannel
        return TraceStore.from_events(source.to_trace_events())
    return TraceStore.from_events(source)


class TraceQuery:
    """A lazily evaluated filter/aggregate over a trace.

    ``.where()`` returns a new query with the filter added (queries are
    immutable and re-runnable); aggregation methods iterate the source,
    pushing track/name/timestamp hints into the store so an indexed
    file only reads matching segments.
    """

    def __init__(self, source: Source, _filters: Optional[dict] = None):
        self._store = _as_store(source)
        self._filters: dict = dict(_filters or {})

    @property
    def store(self) -> TraceStore:
        return self._store

    # -- filters --------------------------------------------------------

    def where(
        self,
        track: Optional[str] = None,
        name: Optional[str] = None,
        phase: Optional[str] = None,
        routine: Optional[str] = None,
        opcode: Optional[str] = None,
        aux: Optional[str] = None,
        reason: Optional[str] = None,
        name_contains: Optional[str] = None,
        name_in: Optional[Iterable[str]] = None,
        ts_min: Optional[int] = None,
        ts_max: Optional[int] = None,
    ) -> "TraceQuery":
        filters = dict(self._filters)
        if track is not None:
            filters["track"] = track
        if name is not None:
            filters["name"] = name
        if name_in is not None:
            filters["name_in"] = frozenset(name_in)
        if phase is not None:
            filters["phase"] = phase
        for value in (routine, aux, reason):
            if value is not None:
                filters["aux"] = value
        if opcode is not None:
            # Instruction spans live on the EBOX track named after the
            # decoded mnemonic — "opcode=" is sugar for exactly that.
            filters["name"] = opcode.upper()
            filters.setdefault("track", "EBOX")
        if name_contains is not None:
            filters["name_contains"] = name_contains.lower()
        if ts_min is not None:
            filters["ts_min"] = int(ts_min)
        if ts_max is not None:
            filters["ts_max"] = int(ts_max)
        return TraceQuery(self._store, filters)

    def _records(self) -> Iterator[Record]:
        filters = self._filters
        track = filters.get("track")
        name = filters.get("name")
        name_set = filters.get("name_in")
        phase = filters.get("phase")
        aux = filters.get("aux")
        contains = filters.get("name_contains")
        ts_min = filters.get("ts_min")
        ts_max = filters.get("ts_max")
        track_hint = {track} if track is not None else None
        name_hint = {name} if name is not None else None
        if name_hint is None and name_set is not None:
            name_hint = set(name_set)
        for record in self._store.iter_records(
            tracks=track_hint, names=name_hint, ts_min=ts_min, ts_max=ts_max
        ):
            if track is not None and record.track != track:
                continue
            if name is not None and record.name != name:
                continue
            if name_set is not None and record.name not in name_set:
                continue
            if phase is not None and record.phase != phase:
                continue
            if aux is not None and record.aux != aux:
                continue
            if contains is not None and contains not in record.name.lower():
                continue
            if ts_min is not None and record.ts < ts_min:
                continue
            if ts_max is not None and record.ts > ts_max:
                continue
            yield record

    @staticmethod
    def _measure(record: Record, field: str) -> int:
        if field in ("cycles", "dur"):
            return record.dur
        if field == "ts":
            return record.ts
        raise QueryError("unknown measure {!r} (cycles, dur, ts)".format(field))

    # -- aggregates -----------------------------------------------------

    def events(self, limit: Optional[int] = None) -> List[Record]:
        out: List[Record] = []
        for record in self._records():
            out.append(record)
            if limit is not None and len(out) >= limit:
                break
        return out

    def count(self) -> int:
        return sum(1 for _ in self._records())

    def sum(self, field: str = "cycles") -> int:
        return sum(self._measure(record, field) for record in self._records())

    def mean(self, field: str = "cycles") -> float:
        total = 0
        count = 0
        for record in self._records():
            total += self._measure(record, field)
            count += 1
        return total / count if count else 0.0

    def histogram(self, field: str = "cycles") -> Dict[str, float]:
        """count/sum/min/max/mean plus p50/p90/p99 of the measure."""
        from repro.obs.metrics import percentile

        samples = [self._measure(record, field) for record in self._records()]
        if not samples:
            return {
                "count": 0, "sum": 0, "min": 0, "max": 0, "mean": 0.0,
                "p50": 0.0, "p90": 0.0, "p99": 0.0,
            }
        samples.sort()
        total = sum(samples)
        return {
            "count": len(samples),
            "sum": total,
            "min": samples[0],
            "max": samples[-1],
            "mean": total / len(samples),
            "p50": percentile(samples, 50),
            "p90": percentile(samples, 90),
            "p99": percentile(samples, 99),
        }

    def group_by(
        self, key: str, agg: str = "sum", field: str = "cycles"
    ) -> Dict[str, Union[int, float]]:
        """Aggregate per group: ``key`` is name/track/phase/aux (routine
        and reason alias aux); ``agg`` is sum/count/mean."""
        attr = _GROUP_KEYS.get(key)
        if attr is None:
            raise QueryError(
                "unknown group key {!r} (one of {})".format(
                    key, "/".join(sorted(_GROUP_KEYS))
                )
            )
        totals: Dict[str, int] = {}
        counts: Dict[str, int] = {}
        for record in self._records():
            group = getattr(record, attr) or "(none)"
            counts[group] = counts.get(group, 0) + 1
            totals[group] = totals.get(group, 0) + self._measure(record, field)
        if agg == "count":
            return counts
        if agg == "sum":
            return totals
        if agg == "mean":
            return {group: totals[group] / counts[group] for group in totals}
        raise QueryError("unknown aggregate {!r} (sum, count, mean)".format(agg))


# ---------------------------------------------------------------------------
# the query mini-language (repro query "...")
# ---------------------------------------------------------------------------

#: where-clause keys the language accepts (everything else is a typo we
#: want to catch, not silently ignore).
_WHERE_KEYS = (
    "track", "name", "phase", "routine", "opcode", "aux", "reason",
    "ts_min", "ts_max",
)

_AGGS = ("count", "sum", "mean", "histogram")


class QueryPlan(NamedTuple):
    """A parsed query, ready to run against any trace source."""

    agg: str
    field: str
    filters: Dict[str, str]
    group_by: Optional[str]
    text: str

    def run(self, source: Source) -> Union[int, float, dict]:
        query = TraceQuery(source)
        for key, value in self.filters.items():
            query = query.where(**{key: value})
        if self.group_by is not None:
            return query.group_by(self.group_by, agg=self.agg, field=self.field)
        if self.agg == "count":
            return query.count()
        if self.agg == "sum":
            return query.sum(self.field)
        if self.agg == "mean":
            return query.mean(self.field)
        return query.histogram(self.field)


def _split_ci(text: str, separator: str) -> List[str]:
    """Case-insensitive split on a word-bounded separator."""
    parts: List[str] = []
    lower = text.lower()
    start = 0
    while True:
        index = lower.find(separator, start)
        if index < 0:
            parts.append(text[start:])
            return parts
        parts.append(text[start:index])
        start = index + len(separator)


def parse_query(text: str) -> QueryPlan:
    """Parse ``[agg] measure [where k=v [and k=v ...]] [group by key]``.

    The measure is ``cycles`` (sum of event durations) or ``events``
    (event count); adjectives before it become a name filter, so
    ``"stall cycles where track=MEM"`` sums the duration of every
    MEM-track event whose name mentions "stall".  Examples::

        stall cycles where track=MEM and routine=SPEC_FETCH
        count events where track=VMS and name=page fault
        cycles where name=read stall group by routine
        histogram cycles where opcode=MOVL
        count events where track=JIT and name=deopt group by reason
    """
    source = " ".join(text.split())
    if not source:
        raise QueryError("empty query")
    group_parts = _split_ci(source, " group by ")
    if len(group_parts) > 2:
        raise QueryError("more than one 'group by' clause")
    body = group_parts[0]
    group_clause = group_parts[1] if len(group_parts) == 2 else None
    where_parts = _split_ci(body, " where ")
    if len(where_parts) > 2:
        raise QueryError("more than one 'where' clause")
    measure_text = where_parts[0].strip()
    conditions = where_parts[1].strip() if len(where_parts) > 1 else ""

    words = measure_text.split()
    agg = None
    if words and words[0].lower() in _AGGS:
        agg = words.pop(0).lower()
    if not words:
        raise QueryError("missing measure (try 'cycles' or 'events')")
    head = words[-1].lower()
    if head == "cycles":
        field = "cycles"
        default_agg = "sum"
    elif head in ("events", "event"):
        field = "cycles"
        default_agg = "count"
    else:
        raise QueryError(
            "measure must end in 'cycles' or 'events', got {!r}".format(words[-1])
        )
    filters: Dict[str, str] = {}
    adjectives = " ".join(words[:-1]).strip()
    if adjectives:
        filters["name_contains"] = adjectives

    if conditions:
        for clause in _split_ci(conditions, " and "):
            clause = clause.strip()
            if "=" not in clause:
                raise QueryError(
                    "condition {!r} is not key=value".format(clause)
                )
            key, _, value = clause.partition("=")
            key = key.strip().lower()
            value = value.strip()
            if key not in _WHERE_KEYS:
                raise QueryError(
                    "unknown filter {!r} (one of {})".format(
                        key, ", ".join(_WHERE_KEYS)
                    )
                )
            if not value:
                raise QueryError("empty value for {!r}".format(key))
            if key in ("ts_min", "ts_max"):
                try:
                    filters[key] = int(value)
                except ValueError:
                    raise QueryError("{} wants an integer, got {!r}".format(key, value))
            else:
                filters[key] = value

    group_key = None
    if group_clause is not None:
        group_key = group_clause.strip().lower()
        if group_key not in _GROUP_KEYS:
            raise QueryError(
                "cannot group by {!r} (one of {})".format(
                    group_key, "/".join(sorted(_GROUP_KEYS))
                )
            )
    return QueryPlan(
        agg=agg or default_agg,
        field=field,
        filters=filters,
        group_by=group_key,
        text=source,
    )

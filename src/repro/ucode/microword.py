"""Microinstruction cycle categories.

Table 8's columns classify every EBOX cycle into one of six mutually
exclusive categories.  Three of them (compute, read, write) are
properties of the *microinstruction* at an address; the stall categories
are properties of *how the cycle was counted*: the histogram board keeps
a non-stalled and a stalled count per location, and read-/write-stall
cycles land in the stalled bank of the read/write microinstruction that
incurred them.  IB stalls are different again — they are executions of a
dedicated "insufficient bytes" dispatch microinstruction, counted in the
normal bank at that address (paper Section 4.3).
"""

from __future__ import annotations

from enum import Enum


class CycleKind(Enum):
    """What a microinstruction at a given address does."""

    COMPUTE = "compute"
    READ = "read"
    WRITE = "write"
    IB_STALL = "ib_stall"  # the "insufficient bytes in IB" dispatch target
    DECODE = "decode"  # the opcode/specifier decode dispatch (a compute cycle)


class MicroSlot(Enum):
    """The standard slots every routine in this layout exposes.

    Real 11/780 microroutines were hand-packed sequences; this layout
    regularizes each routine into up to five addressable slots.  Loops in
    real microcode re-execute the same address many times — here long
    computations re-tick ``COMPUTE_B`` the same way, so histogram counts
    remain faithful to how the real board accumulated them.
    """

    COMPUTE_A = 0  # first/setup compute microinstruction
    COMPUTE_B = 1  # loop-body compute microinstruction
    READ = 2  # the memory-read microinstruction
    WRITE = 3  # the memory-write microinstruction
    IB_WAIT = 4  # the insufficient-bytes dispatch target


#: Which cycle category each slot's executions fall into.
SLOT_KIND = {
    MicroSlot.COMPUTE_A: CycleKind.COMPUTE,
    MicroSlot.COMPUTE_B: CycleKind.COMPUTE,
    MicroSlot.READ: CycleKind.READ,
    MicroSlot.WRITE: CycleKind.WRITE,
    MicroSlot.IB_WAIT: CycleKind.IB_STALL,
}

"""Microroutine cycle costs.

These tables say how many microcycles each piece of microcode spends in
each activity.  They are the implementation-model knobs of the
reproduction: the *structure* (who reads, who writes, what can stall)
comes from the architecture, while the cycle counts approximate the
11/780 microcode.  The ablation benches sweep several of them.

Specifier costs follow the division of labour of Section 3.2: specifier
microcode owns scalar data reads/writes and the address calculation of
non-scalar data; execute microcode owns the instruction's own work.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.opcodes import Opcode, OpcodeGroup
from repro.isa.specifiers import AddressingMode


@dataclass(frozen=True)
class SpecCost:
    """Cycle cost of processing one operand specifier.

    ``address_cycles`` are the compute cycles spent decoding and
    computing the effective address; ``pointer_reads`` are memory reads
    performed *during* address calculation (deferred modes); data reads
    and writes are charged as they happen per the operand's access type.
    """

    address_cycles: int
    pointer_reads: int = 0


SPEC_COSTS = {
    AddressingMode.SHORT_LITERAL: SpecCost(address_cycles=1),
    AddressingMode.REGISTER: SpecCost(address_cycles=1),
    AddressingMode.REGISTER_DEFERRED: SpecCost(address_cycles=1),
    AddressingMode.AUTOINCREMENT: SpecCost(address_cycles=2),
    AddressingMode.AUTODECREMENT: SpecCost(address_cycles=2),
    AddressingMode.AUTOINCREMENT_DEFERRED: SpecCost(address_cycles=3, pointer_reads=1),
    AddressingMode.BYTE_DISPLACEMENT: SpecCost(address_cycles=1),
    AddressingMode.WORD_DISPLACEMENT: SpecCost(address_cycles=2),
    AddressingMode.LONG_DISPLACEMENT: SpecCost(address_cycles=2),
    AddressingMode.BYTE_DISPLACEMENT_DEFERRED: SpecCost(address_cycles=3, pointer_reads=1),
    AddressingMode.WORD_DISPLACEMENT_DEFERRED: SpecCost(address_cycles=3, pointer_reads=1),
    AddressingMode.LONG_DISPLACEMENT_DEFERRED: SpecCost(address_cycles=3, pointer_reads=1),
    AddressingMode.IMMEDIATE: SpecCost(address_cycles=1),
    AddressingMode.ABSOLUTE: SpecCost(address_cycles=2),
    AddressingMode.BYTE_RELATIVE: SpecCost(address_cycles=1),
    AddressingMode.WORD_RELATIVE: SpecCost(address_cycles=2),
    AddressingMode.LONG_RELATIVE: SpecCost(address_cycles=2),
    AddressingMode.BYTE_RELATIVE_DEFERRED: SpecCost(address_cycles=3, pointer_reads=1),
    AddressingMode.WORD_RELATIVE_DEFERRED: SpecCost(address_cycles=3, pointer_reads=1),
    AddressingMode.LONG_RELATIVE_DEFERRED: SpecCost(address_cycles=3, pointer_reads=1),
}

#: Extra compute cycles charged by the shared index microcode when a
#: specifier carries an index prefix.  Microcode sharing puts this work at
#: SPEC2-6 addresses even for first specifiers (a quirk the paper calls
#: out and we reproduce).
INDEX_EXTRA_CYCLES = 2


@dataclass(frozen=True)
class ExecProfile:
    """Execute-phase cycle model for one opcode.

    ``base_cycles``: compute cycles every execution spends.
    ``taken_extra_cycles``: additional compute when a branch is taken
    (the cycle that redirects the IB lives here).
    ``per_item_cycles``: compute cycles per dynamic work item (register
    pushed, longword moved, digit processed ...), ticked at the routine's
    loop slot.
    """

    base_cycles: int
    taken_extra_cycles: int = 0
    per_item_cycles: int = 0


# Execute-phase profiles by mnemonic, with group defaults below.  Values
# approximate the 11/780 microcode lengths; Table 9's within-group costs
# are the observable these produce.
_EXEC_PROFILES = {
    # Simple moves do most of their data work in specifier microcode;
    # the execute phase is the one store-dispatch cycle (merged away by
    # the literal/register optimization when it applies).
    "MOVB": ExecProfile(1), "MOVW": ExecProfile(1), "MOVL": ExecProfile(1),
    "MOVQ": ExecProfile(2),
    "MOVZBW": ExecProfile(1), "MOVZBL": ExecProfile(1), "MOVZWL": ExecProfile(1),
    "MOVAB": ExecProfile(1), "MOVAW": ExecProfile(1), "MOVAL": ExecProfile(1),
    "MOVAQ": ExecProfile(1),
    "PUSHL": ExecProfile(1), "PUSHAB": ExecProfile(1), "PUSHAW": ExecProfile(1),
    "PUSHAL": ExecProfile(1),
    "CLRB": ExecProfile(1), "CLRW": ExecProfile(1), "CLRL": ExecProfile(1),
    "CLRQ": ExecProfile(1),
    "NOP": ExecProfile(1),
    # ALU operations: one pass through the ALU.
    # (Two-operand and three-operand forms share microcode on the 780.)
    # Arithmetic/logic default comes from the group default below.
    "ASHL": ExecProfile(3), "ROTL": ExecProfile(3),
    "ADWC": ExecProfile(2), "SBWC": ExecProfile(2),
    "CVTBW": ExecProfile(2), "CVTBL": ExecProfile(2), "CVTWL": ExecProfile(2),
    "CVTWB": ExecProfile(2), "CVTLB": ExecProfile(2), "CVTLW": ExecProfile(2),
    # Branches: test, then redirect when taken.
    "BNEQ": ExecProfile(1, taken_extra_cycles=1),
    "BEQL": ExecProfile(1, taken_extra_cycles=1),
    "BGTR": ExecProfile(1, taken_extra_cycles=1),
    "BLEQ": ExecProfile(1, taken_extra_cycles=1),
    "BGEQ": ExecProfile(1, taken_extra_cycles=1),
    "BLSS": ExecProfile(1, taken_extra_cycles=1),
    "BGTRU": ExecProfile(1, taken_extra_cycles=1),
    "BLEQU": ExecProfile(1, taken_extra_cycles=1),
    "BVC": ExecProfile(1, taken_extra_cycles=1),
    "BVS": ExecProfile(1, taken_extra_cycles=1),
    "BCC": ExecProfile(1, taken_extra_cycles=1),
    "BCS": ExecProfile(1, taken_extra_cycles=1),
    "BRB": ExecProfile(1, taken_extra_cycles=1),
    "BRW": ExecProfile(1, taken_extra_cycles=1),
    "AOBLSS": ExecProfile(2, taken_extra_cycles=1),
    "AOBLEQ": ExecProfile(2, taken_extra_cycles=1),
    "SOBGEQ": ExecProfile(2, taken_extra_cycles=1),
    "SOBGTR": ExecProfile(2, taken_extra_cycles=1),
    "ACBB": ExecProfile(3, taken_extra_cycles=1),
    "ACBW": ExecProfile(3, taken_extra_cycles=1),
    "ACBL": ExecProfile(3, taken_extra_cycles=1),
    "BLBS": ExecProfile(1, taken_extra_cycles=1),
    "BLBC": ExecProfile(1, taken_extra_cycles=1),
    "BSBB": ExecProfile(2, taken_extra_cycles=1),
    "BSBW": ExecProfile(2, taken_extra_cycles=1),
    "JSB": ExecProfile(2, taken_extra_cycles=1),
    "RSB": ExecProfile(2, taken_extra_cycles=1),
    "JMP": ExecProfile(1, taken_extra_cycles=1),
    "CASEB": ExecProfile(4, taken_extra_cycles=1),
    "CASEW": ExecProfile(4, taken_extra_cycles=1),
    "CASEL": ExecProfile(4, taken_extra_cycles=1),
    # Field group.
    "EXTV": ExecProfile(6), "EXTZV": ExecProfile(6), "INSV": ExecProfile(7),
    "CMPV": ExecProfile(6), "CMPZV": ExecProfile(6),
    "FFS": ExecProfile(8), "FFC": ExecProfile(8),
    "BBS": ExecProfile(3, taken_extra_cycles=1),
    "BBC": ExecProfile(3, taken_extra_cycles=1),
    "BBSS": ExecProfile(4, taken_extra_cycles=1),
    "BBCS": ExecProfile(4, taken_extra_cycles=1),
    "BBSC": ExecProfile(4, taken_extra_cycles=1),
    "BBCC": ExecProfile(4, taken_extra_cycles=1),
    "BBSSI": ExecProfile(5, taken_extra_cycles=1),
    "BBCCI": ExecProfile(5, taken_extra_cycles=1),
    # Float group (all measured machines had the FPA).
    "ADDF2": ExecProfile(5), "ADDF3": ExecProfile(5),
    "SUBF2": ExecProfile(5), "SUBF3": ExecProfile(5),
    "MULF2": ExecProfile(7), "MULF3": ExecProfile(7),
    "DIVF2": ExecProfile(13), "DIVF3": ExecProfile(13),
    "MOVF": ExecProfile(1), "CMPF": ExecProfile(3), "MNEGF": ExecProfile(2),
    "TSTF": ExecProfile(2),
    "CVTBF": ExecProfile(5), "CVTWF": ExecProfile(5), "CVTLF": ExecProfile(5),
    "CVTFB": ExecProfile(5), "CVTFW": ExecProfile(5), "CVTFL": ExecProfile(5),
    "CVTRFL": ExecProfile(5),
    "MULB2": ExecProfile(9), "MULB3": ExecProfile(9),
    "MULW2": ExecProfile(10), "MULW3": ExecProfile(10),
    "MULL2": ExecProfile(11), "MULL3": ExecProfile(11),
    "DIVB2": ExecProfile(17), "DIVB3": ExecProfile(17),
    "DIVW2": ExecProfile(19), "DIVW3": ExecProfile(19),
    "DIVL2": ExecProfile(21), "DIVL3": ExecProfile(21),
    "EMUL": ExecProfile(13), "EDIV": ExecProfile(25),
    "POLYF": ExecProfile(6, per_item_cycles=8),  # per polynomial degree
    "EMODF": ExecProfile(11),
    "ACBF": ExecProfile(6, taken_extra_cycles=1),
    # Call/Ret: heavy state save/restore; per_item covers each register
    # moved, with interleaved computation spacing the stack writes.
    "CALLS": ExecProfile(17, per_item_cycles=4),
    "CALLG": ExecProfile(17, per_item_cycles=4),
    "RET": ExecProfile(15, per_item_cycles=4),
    "PUSHR": ExecProfile(4, per_item_cycles=3),
    "POPR": ExecProfile(4, per_item_cycles=3),
    # System group.
    "CHMK": ExecProfile(15, taken_extra_cycles=1),
    "CHME": ExecProfile(15, taken_extra_cycles=1),
    "REI": ExecProfile(11, taken_extra_cycles=1),
    "SVPCTX": ExecProfile(12, per_item_cycles=2),
    "LDPCTX": ExecProfile(16, per_item_cycles=2),
    "PROBER": ExecProfile(6), "PROBEW": ExecProfile(6),
    "MTPR": ExecProfile(4), "MFPR": ExecProfile(4),
    "INSQUE": ExecProfile(8), "REMQUE": ExecProfile(8),
    "BISPSW": ExecProfile(2), "BICPSW": ExecProfile(2),
    # Character group: setup plus a per-longword (or per-byte) loop.  The
    # move loops space their writes to dodge write stalls, as the real
    # microcode did.
    "MOVC3": ExecProfile(16, per_item_cycles=5),
    "MOVC5": ExecProfile(18, per_item_cycles=5),
    "CMPC3": ExecProfile(16, per_item_cycles=4),
    "CMPC5": ExecProfile(18, per_item_cycles=4),
    "LOCC": ExecProfile(10, per_item_cycles=2),
    "SKPC": ExecProfile(10, per_item_cycles=2),
    "SCANC": ExecProfile(12, per_item_cycles=3),
    "SPANC": ExecProfile(12, per_item_cycles=3),
    "MOVTC": ExecProfile(16, per_item_cycles=5),
    "MATCHC": ExecProfile(14, per_item_cycles=3),
    "CRC": ExecProfile(12, per_item_cycles=6),
    # Decimal group: digit-serial BCD arithmetic.
    "ADDP4": ExecProfile(16, per_item_cycles=6),
    "SUBP4": ExecProfile(16, per_item_cycles=6),
    "MOVP": ExecProfile(12, per_item_cycles=4),
    "CMPP3": ExecProfile(12, per_item_cycles=4),
    "CVTLP": ExecProfile(16, per_item_cycles=6),
    "CVTPL": ExecProfile(14, per_item_cycles=5),
    "ASHP": ExecProfile(18, per_item_cycles=6),
}

#: Fallback execute cost per group for opcodes not listed above
#: (plain ALU operations and the like).
_GROUP_DEFAULTS = {
    OpcodeGroup.SIMPLE: ExecProfile(1),
    OpcodeGroup.FIELD: ExecProfile(5),
    OpcodeGroup.FLOAT: ExecProfile(4),
    OpcodeGroup.CALLRET: ExecProfile(8),
    OpcodeGroup.SYSTEM: ExecProfile(8),
    OpcodeGroup.CHARACTER: ExecProfile(8, per_item_cycles=3),
    OpcodeGroup.DECIMAL: ExecProfile(12, per_item_cycles=4),
}


def exec_profile(opcode: Opcode) -> ExecProfile:
    """The execute-phase cycle profile for ``opcode``."""
    profile = _EXEC_PROFILES.get(opcode.mnemonic)
    if profile is not None:
        return profile
    return _GROUP_DEFAULTS[opcode.group]


#: TB-miss service routine: compute cycles beside the PTE read.  With the
#: read cycle itself and the average PTE-fetch stall this lands near the
#: paper's 21.6 cycles per miss.
TB_MISS_COMPUTE_CYCLES = 17

#: Alignment microcode: extra memory-management compute per unaligned ref.
UNALIGNED_EXTRA_CYCLES = 4

#: Interrupt delivery microcode (entry through the SCB, stack switch).
INTERRUPT_ENTRY_COMPUTE_CYCLES = 14
INTERRUPT_ENTRY_WRITES = 2  # pushed PC and PSL

#: Exception (page-fault style) delivery.
EXCEPTION_ENTRY_COMPUTE_CYCLES = 16
EXCEPTION_ENTRY_WRITES = 3

"""The microcoded EBOX's control store.

The 11/780 executes every VAX instruction as a sequence of
microinstructions held in a 16K-location control store; the paper's
monitor counts cycles *per control-store location*.  This package lays
out that control store: every activity the EBOX can perform — opcode
decode, each specifier mode's processing (separately for first and
subsequent specifiers), branch-displacement handling, each opcode's
execute phase, TB-miss service, interrupt entry, abort cycles — gets real
micro-PC addresses.  The region map doubles as the analyst's dictionary
for turning raw histogram counts back into the paper's tables.
"""

from repro.ucode.microword import CycleKind, MicroSlot
from repro.ucode.control_store import (
    ControlStore,
    Region,
    Routine,
    CONTROL_STORE_SIZE,
)
from repro.ucode.routines import MicrocodeLayout, build_layout
from repro.ucode.costs import SPEC_COSTS, exec_profile, ExecProfile

__all__ = [
    "CycleKind",
    "MicroSlot",
    "ControlStore",
    "Region",
    "Routine",
    "CONTROL_STORE_SIZE",
    "MicrocodeLayout",
    "build_layout",
    "SPEC_COSTS",
    "exec_profile",
    "ExecProfile",
]

"""The 16K-location control store and its region map.

Regions correspond to the *rows* of Table 8: decode, first-specifier
processing, subsequent-specifier processing, branch displacements, one
execute region per opcode group, and the overhead regions (interrupts and
exceptions, memory management, aborts).  The analysis layer classifies a
histogram bucket by looking its address up here — exactly the
"additional interpretation of the raw histogram data" the paper
describes, with the region map standing in for the microcode listings the
authors read.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Tuple

from repro.ucode.microword import SLOT_KIND, CycleKind, MicroSlot

CONTROL_STORE_SIZE = 16 * 1024


class Region(Enum):
    """Named control-store regions with (base, size) extents."""

    DECODE = ("decode", 0x0000, 0x0010)
    SPEC1 = ("spec1", 0x0100, 0x0100)
    SPEC26 = ("spec26", 0x0200, 0x0100)
    BDISP = ("bdisp", 0x0300, 0x0010)
    EXEC_SIMPLE = ("exec_simple", 0x0400, 0x0400)
    EXEC_FIELD = ("exec_field", 0x0800, 0x0100)
    EXEC_FLOAT = ("exec_float", 0x0900, 0x0200)
    EXEC_CALLRET = ("exec_callret", 0x0B00, 0x0080)
    EXEC_SYSTEM = ("exec_system", 0x0C00, 0x0100)
    EXEC_CHARACTER = ("exec_character", 0x0D00, 0x0080)
    EXEC_DECIMAL = ("exec_decimal", 0x0E00, 0x0080)
    INTEXC = ("intexc", 0x0F00, 0x0040)
    MEMMGMT = ("memmgmt", 0x0F40, 0x0040)
    ABORT = ("abort", 0x0F80, 0x0010)

    def __init__(self, label: str, base: int, size: int):
        self.label = label
        self.base = base
        self.size = size

    @property
    def end(self) -> int:
        return self.base + self.size


@dataclass
class Routine:
    """One microroutine: a name plus the addresses of its slots.

    ``patched`` marks routines whose entry microinstruction carries a
    control-store patch; each execution costs one extra abort cycle
    (Section 5: "one [abort cycle] ... for each microcode patch").
    """

    name: str
    region: Region
    slots: Dict[MicroSlot, int]
    patched: bool = False

    def __post_init__(self):
        #: Dense per-slot address table, indexed by ``MicroSlot.value``.
        #: The EBOX charges cycles once per microinstruction; indexing
        #: this list avoids hashing an enum key on every cycle.
        addrs = [None] * len(MicroSlot)
        for slot, address in self.slots.items():
            addrs[slot.value] = address
        self.slot_addrs = addrs

    def address(self, slot: MicroSlot) -> int:
        """The micro-PC of one slot of this routine."""
        return self.slots[slot]

    @property
    def base(self) -> int:
        return min(self.slots.values())


class ControlStore:
    """Allocates routines into regions and answers reverse lookups."""

    def __init__(self):
        self._cursor: Dict[Region, int] = {region: region.base for region in Region}
        self._routines: List[Routine] = []
        self._by_address: Dict[int, Tuple[Routine, MicroSlot]] = {}
        self._verify_regions_disjoint()

    @staticmethod
    def _verify_regions_disjoint() -> None:
        extents = sorted((region.base, region.end, region) for region in Region)
        for (b1, e1, r1), (b2, e2, r2) in zip(extents, extents[1:]):
            if e1 > b2:
                raise ValueError("regions {} and {} overlap".format(r1, r2))
        if extents[-1][1] > CONTROL_STORE_SIZE:
            raise ValueError("regions exceed the 16K control store")

    def allocate(self, region: Region, name: str, slots=tuple(MicroSlot)) -> Routine:
        """Allocate a routine with the given slots in ``region``."""
        cursor = self._cursor[region]
        if cursor + len(slots) > region.end:
            raise ValueError("region {} is full".format(region))
        addresses = {}
        for offset, slot in enumerate(slots):
            address = cursor + offset
            addresses[slot] = address
        routine = Routine(name=name, region=region, slots=addresses)
        for slot, address in addresses.items():
            self._by_address[address] = (routine, slot)
        self._cursor[region] = cursor + len(slots)
        self._routines.append(routine)
        return routine

    def lookup(self, address: int) -> Optional[Tuple[Routine, MicroSlot]]:
        """Reverse-map a micro-PC to (routine, slot); None for unused."""
        return self._by_address.get(address)

    def kind_of(self, address: int) -> Optional[CycleKind]:
        """The cycle category of the microinstruction at ``address``."""
        entry = self._by_address.get(address)
        if entry is None:
            return None
        return SLOT_KIND[entry[1]]

    def region_of(self, address: int) -> Optional[Region]:
        entry = self._by_address.get(address)
        return entry[0].region if entry else None

    @property
    def routines(self) -> List[Routine]:
        return list(self._routines)

    def used_addresses(self):
        """All allocated micro-PCs (for histogram-coverage checks)."""
        return sorted(self._by_address)

    def listing(self) -> str:
        """A human-readable control-store listing.

        The analysis role of this map is exactly what the paper's authors
        got from the real microcode listings: which activity each
        micro-PC belongs to, and what the microinstruction there does.
        """
        lines = ["addr   region         routine                        slot"]
        for address in self.used_addresses():
            routine, slot = self._by_address[address]
            patch = "  [patched]" if routine.patched and slot is MicroSlot.COMPUTE_A else ""
            lines.append(
                "{:04x}   {:<14} {:<30} {}{}".format(
                    address, routine.region.label, routine.name, slot.name, patch
                )
            )
        return "\n".join(lines)

"""Builds the full control-store layout for the machine.

One routine per activity, addressed so that:

* opcode decode dispatch (and its IB-stall target) live in DECODE;
* every addressing mode has a routine in SPEC1 *and* a separate copy in
  SPEC26 — the 11/780 microcode distinguished first specifiers from the
  rest, which is what lets the paper report them separately;
* the shared indexed-mode microcode lives only in SPEC26 (the
  microcode-sharing quirk that makes indexed first specifiers report
  their base-address calculation under SPEC2-6);
* every opcode has an execute routine in its group's region;
* the overhead routines (interrupt entry, exception entry, TB-miss
  service, alignment fix-up, abort) get their own regions.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field
from typing import Dict

from repro.isa.opcodes import OPCODES, Opcode, OpcodeGroup
from repro.isa.specifiers import AddressingMode
from repro.ucode.control_store import ControlStore, Region, Routine
from repro.ucode.microword import MicroSlot

#: Routines whose entry microinstruction carries a control-store patch.
#: The 11/780's field-maintenance patches sat on hot microwords; this set
#: approximates that population (tuned so the abort row lands near the
#: paper's 0.127 cycles per instruction alongside microtrap aborts).
PATCHED_ROUTINES = frozenset(
    {
        "exec.blss",
        "exec.sobgtr",
        "exec.calls",
        "exec.ret",
        "exec.movc3",
        "exec.chmk",
        "spec1.immediate",
    }
)

_EXEC_REGION_FOR_GROUP = {
    OpcodeGroup.SIMPLE: Region.EXEC_SIMPLE,
    OpcodeGroup.FIELD: Region.EXEC_FIELD,
    OpcodeGroup.FLOAT: Region.EXEC_FLOAT,
    OpcodeGroup.CALLRET: Region.EXEC_CALLRET,
    OpcodeGroup.SYSTEM: Region.EXEC_SYSTEM,
    OpcodeGroup.CHARACTER: Region.EXEC_CHARACTER,
    OpcodeGroup.DECIMAL: Region.EXEC_DECIMAL,
}


@dataclass
class MicrocodeLayout:
    """Handles to every routine in the control store."""

    store: ControlStore
    decode: Routine
    spec1: Dict[AddressingMode, Routine]
    spec26: Dict[AddressingMode, Routine]
    spec1_wait: Routine
    spec26_wait: Routine
    index_shared: Routine  # indexed-mode base-calculation microcode (SPEC26)
    bdisp: Routine
    execute: Dict[str, Routine]  # by mnemonic
    interrupt: Routine
    exception: Routine
    tb_miss: Routine
    alignment: Routine
    abort: Routine

    def exec_routine(self, opcode: Opcode) -> Routine:
        return self.execute[opcode.mnemonic]


def build_layout(fresh: bool = False) -> MicrocodeLayout:
    """The control-store layout (cached — it is fully deterministic).

    Building the layout allocates ~450 routines; every machine used to
    rebuild it from scratch.  Since the allocation is a pure function of
    the opcode/addressing-mode tables, one shared instance serves every
    machine (routines are read-only during execution).  Pass
    ``fresh=True`` to bypass the cache — the escape hatch for tests that
    mutate routines (patch flags, etc.) and must not poison other users.
    """
    if fresh:
        return _build_layout()
    return _cached_layout()


@functools.lru_cache(maxsize=1)
def _cached_layout() -> MicrocodeLayout:
    return _build_layout()


def _build_layout() -> MicrocodeLayout:
    """Allocate every routine and return the layout handles."""
    store = ControlStore()

    decode = store.allocate(
        Region.DECODE, "decode.dispatch", (MicroSlot.COMPUTE_A, MicroSlot.IB_WAIT)
    )

    # Per-region decode-wait routines: the common "fetch the next
    # specifier byte" dispatch whose insufficient-bytes target is where
    # first-byte IB stalls are counted for each row.
    spec1_wait = store.allocate(Region.SPEC1, "spec1.decode_wait", (MicroSlot.IB_WAIT,))
    spec26_wait = store.allocate(Region.SPEC26, "spec26.decode_wait", (MicroSlot.IB_WAIT,))

    spec1 = {}
    spec26 = {}
    for mode in AddressingMode:
        if mode is AddressingMode.INDEXED:
            continue  # handled by the shared index routine below
        spec1[mode] = store.allocate(Region.SPEC1, "spec1.{}".format(mode.name.lower()))
        spec26[mode] = store.allocate(Region.SPEC26, "spec26.{}".format(mode.name.lower()))

    index_shared = store.allocate(Region.SPEC26, "spec26.index_shared")

    bdisp = store.allocate(
        Region.BDISP, "bdisp", (MicroSlot.COMPUTE_A, MicroSlot.IB_WAIT)
    )

    execute = {}
    for code in sorted(OPCODES):
        opcode = OPCODES[code]
        region = _EXEC_REGION_FOR_GROUP[opcode.group]
        execute[opcode.mnemonic] = store.allocate(
            region, "exec.{}".format(opcode.mnemonic.lower())
        )

    # Apply the control-store patch markers.
    for routine in store.routines:
        if routine.name in PATCHED_ROUTINES:
            routine.patched = True

    interrupt = store.allocate(Region.INTEXC, "intexc.interrupt")
    exception = store.allocate(Region.INTEXC, "intexc.exception")
    tb_miss = store.allocate(Region.MEMMGMT, "memmgmt.tb_miss")
    alignment = store.allocate(Region.MEMMGMT, "memmgmt.alignment")
    abort = store.allocate(Region.ABORT, "abort", (MicroSlot.COMPUTE_A,))

    layout = MicrocodeLayout(
        store=store,
        decode=decode,
        spec1=spec1,
        spec26=spec26,
        spec1_wait=spec1_wait,
        spec26_wait=spec26_wait,
        index_shared=index_shared,
        bdisp=bdisp,
        execute=execute,
        interrupt=interrupt,
        exception=exception,
        tb_miss=tb_miss,
        alignment=alignment,
        abort=abort,
    )

    # Flatten every routine into its dense replay program while the
    # routine set is known-final.  Deferred import: repro.core.compile
    # imports repro.cpu, which imports this module.
    from repro.core.compile import specialize_layout

    specialize_layout(layout)
    return layout


#: Tests that must invalidate the shared layout can call this.
build_layout.cache_clear = _cached_layout.cache_clear

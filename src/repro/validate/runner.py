"""Execute probes through the real engine and diff against ground truth.

The :class:`RefutationRunner` runs each :class:`~repro.validate.probes.Probe`
through the normal machine/monitor path — the same
:class:`~repro.core.monitor.UPCMonitor` strobe, the same
:func:`~repro.core.reduction.reduce_histogram` — in every compile mode
(interpreted, compiled, ``REPRO_COMPILE_TIER_THRESHOLD=1``), checks the
probe's expectations against the first arm, asserts the other arms are
bit-identical to it, and re-runs once traced so
:class:`repro.obs.query.TraceQuery` aggregates can be diffed against
the counters too.

On a violated expectation the failure carries blame: the expectation's
own micro-routine when it names one, plus the
:func:`repro.obs.invariants.localize_unclassified` stalled-bank walk
whenever the readout holds cycles no legitimate run produces — the
same localization ``repro check`` uses.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.validate.probes import Expectation, Probe, build_probes

#: Mode name -> environment overrides (None = ensure unset).  ``current``
#: runs under whatever the caller's environment already says — the CI
#: legs use it to validate under an externally pinned mode.
MODES: Dict[str, Dict[str, Optional[str]]] = {
    "interpreted": {"REPRO_NO_COMPILE": "1", "REPRO_COMPILE_TIER_THRESHOLD": None},
    "compiled": {"REPRO_NO_COMPILE": None, "REPRO_COMPILE_TIER_THRESHOLD": None},
    "tier1": {"REPRO_NO_COMPILE": None, "REPRO_COMPILE_TIER_THRESHOLD": "1"},
    "current": {},
}

ALL_MODES = ("interpreted", "compiled", "tier1")


class ValidationError(Exception):
    """A probe run could not be executed as specified."""


@contextmanager
def _mode_env(mode: str):
    overrides = MODES[mode]
    saved = {name: os.environ.get(name) for name in overrides}
    try:
        for name, value in overrides.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value
        yield
    finally:
        for name, value in saved.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value


@dataclass
class ProbeOutcome:
    """One expectation (or derived check), evaluated against one run."""

    name: str
    expected: str
    actual: float
    ok: bool
    mode: str
    blame: str = ""
    detail: str = ""

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "expected": self.expected,
            "actual": self.actual,
            "ok": self.ok,
            "mode": self.mode,
            "blame": self.blame,
            "detail": self.detail,
        }


@dataclass
class ProbeReport:
    """Every check for one probe across every requested mode."""

    name: str
    title: str = ""
    covers: str = ""
    canonical: bool = False
    modes: Tuple[str, ...] = ()
    outcomes: List[ProbeOutcome] = field(default_factory=list)
    skipped: Dict[str, str] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return all(outcome.ok for outcome in self.outcomes)

    @property
    def failures(self) -> List[ProbeOutcome]:
        return [outcome for outcome in self.outcomes if not outcome.ok]

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "title": self.title,
            "covers": self.covers,
            "canonical": self.canonical,
            "modes": list(self.modes),
            "ok": self.ok,
            "checks": [outcome.to_dict() for outcome in self.outcomes],
            "skipped": dict(self.skipped),
        }


@dataclass
class ProbeRun:
    """The raw observables of one probe execution in one mode."""

    mode: str
    reduction: object
    events: object
    stats: object
    counts: list
    stalled: list
    layout: object
    halted: bool

    def metric(self, path: str) -> float:
        return resolve_metric(path, self.reduction, self.events, self.stats)

    def signature(self) -> dict:
        """Everything two modes must agree on, JSON-shaped for diffing."""
        from dataclasses import asdict

        return {
            "instructions": self.reduction.instructions,
            "cycles": self.reduction.total_cycles,
            "matrix": {
                row: dict(columns) for row, columns in self.reduction.matrix.items()
            },
            "routines": {
                name: list(pair)
                for name, pair in sorted(self.reduction.routine_cycles.items())
            },
            "specifiers": {
                "{}/{}".format(*key): count
                for key, count in sorted(self.events.specifier_counts.items())
            },
            "indexed": dict(self.events.indexed_specifiers),
            "interrupts": self.events.interrupts_delivered,
            "stats": asdict(self.stats),
        }


def resolve_metric(path: str, reduction, events, stats) -> float:
    """Map an expectation's metric path onto the run's instruments.

    ``instructions`` / ``cycles`` — the reduction totals;
    ``matrix.<row>.<column>`` — one Table 8 cell;
    ``routine.<name>.cycles|stalled`` — per-micro-routine totals;
    ``spec.<class>.<row>`` / ``indexed.<class>`` — specifier tallies;
    ``stats.<field>`` / ``events.<field>`` — hardware-side statistics
    and companion counters.
    """
    if path == "instructions":
        return reduction.instructions
    if path == "cycles":
        return reduction.total_cycles
    parts = path.split(".")
    kind = parts[0]
    if kind == "matrix" and len(parts) == 3:
        return reduction.matrix[parts[1]][parts[2]]
    if kind == "routine" and len(parts) >= 3:
        which = parts[-1]
        name = ".".join(parts[1:-1])
        normal, stalled = reduction.routine_cycles.get(name, (0, 0))
        if which == "cycles":
            return normal
        if which == "stalled":
            return stalled
    if kind == "spec" and len(parts) == 3:
        return events.specifier_counts.get((parts[1], parts[2]), 0)
    if kind == "indexed" and len(parts) == 2:
        return events.indexed_specifiers.get(parts[1], 0)
    if kind == "stats" and len(parts) == 2 and hasattr(stats, parts[1]):
        return getattr(stats, parts[1])
    if kind == "events" and len(parts) == 2 and hasattr(events, parts[1]):
        return getattr(events, parts[1])
    raise ValidationError("unknown expectation metric {!r}".format(path))


def execute_probe(probe: Probe, mode: str, tracer=None) -> ProbeRun:
    """One bare-machine run of ``probe`` under ``mode``'s environment.

    The monitor covers the entire program (no warmup window): a probe's
    ground truth is stated for the whole run.
    """
    from repro.core.experiment import MachineStats
    from repro.core.monitor import UPCMonitor
    from repro.core.reduction import reduce_histogram
    from repro.cpu import VAX780
    from repro.cpu.machine import InterruptRequest

    with _mode_env(mode):
        asm = probe.build()
        image = asm.assemble()
        machine = VAX780(monitor=UPCMonitor.build())
        if tracer is not None:
            machine.attach_tracer(tracer)
        machine.load_program(image, asm.origin)
        for base, length in probe.map_ranges:
            machine.map_range(base, length)
        if probe.interrupt_label:
            machine.interrupts.post(
                InterruptRequest(
                    ipl=probe.interrupt_ipl,
                    vector_va=asm.symbols[probe.interrupt_label],
                )
            )
        machine.monitor.start()
        machine.run(max_instructions=probe.max_instructions)
        machine.monitor.stop()
        counts, stalled = machine.monitor.board.dump()
        reduction = reduce_histogram(
            counts, stalled, machine.layout, events=machine.events
        )
        stats = MachineStats.from_machine(machine)
        return ProbeRun(
            mode=mode,
            reduction=reduction,
            events=machine.events,
            stats=stats,
            counts=counts,
            stalled=stalled,
            layout=machine.layout,
            halted=machine.ebox.halted,
        )


def _first_divergence(a: dict, b: dict, prefix: str = "") -> str:
    """Name the first leaf where two signatures disagree."""
    for key in sorted(set(a) | set(b)):
        path = "{}.{}".format(prefix, key) if prefix else str(key)
        left, right = a.get(key), b.get(key)
        if isinstance(left, dict) and isinstance(right, dict):
            nested = _first_divergence(left, right, path)
            if nested:
                return nested
            continue
        if left != right:
            return "{}: {!r} != {!r}".format(path, left, right)
    return ""


class RefutationRunner:
    """Run probes, diff against expectations, localize blame."""

    def __init__(
        self,
        modes: Sequence[str] = ALL_MODES,
        trace: bool = True,
        tracer_capacity: int = 1 << 20,
    ):
        unknown = [mode for mode in modes if mode not in MODES]
        if unknown:
            raise ValidationError(
                "unknown mode(s) {} (know {})".format(
                    ", ".join(unknown), ", ".join(MODES)
                )
            )
        self.modes = tuple(modes)
        self.trace = trace
        self.tracer_capacity = tracer_capacity

    def run_probe(self, probe: Probe) -> ProbeReport:
        report = ProbeReport(
            name=probe.name,
            title=probe.title,
            covers=probe.covers,
            canonical=probe.canonical,
            modes=self.modes,
        )
        runs = [execute_probe(probe, mode) for mode in self.modes]
        anchor = runs[0]

        report.outcomes.append(
            ProbeOutcome(
                name="run.halted",
                expected="== True",
                actual=float(anchor.halted),
                ok=anchor.halted,
                mode=anchor.mode,
                detail="" if anchor.halted else (
                    "the probe hit its {}-instruction budget without "
                    "halting".format(probe.max_instructions)
                ),
            )
        )

        localization = ""
        for expectation in probe.expectations:
            actual = anchor.metric(expectation.metric)
            ok = expectation.check(actual)
            detail = ""
            if not ok:
                if not localization:
                    localization = self._localize(anchor)
                detail = localization
            report.outcomes.append(
                ProbeOutcome(
                    name=expectation.metric,
                    expected=expectation.describe(),
                    actual=actual,
                    ok=ok,
                    mode=anchor.mode,
                    blame=expectation.blame or _blame_from_metric(expectation.metric),
                    detail=detail,
                )
            )

        # The three modes are contractually bit-identical; checking the
        # anchor and pinning the other arms to it checks everything.
        anchor_signature = anchor.signature()
        for run in runs[1:]:
            divergence = _first_divergence(anchor_signature, run.signature())
            report.outcomes.append(
                ProbeOutcome(
                    name="crossmode.{}".format(run.mode),
                    expected="bit-identical to the {} arm".format(anchor.mode),
                    actual=float(not divergence),
                    ok=not divergence,
                    mode=run.mode,
                    blame="" if not divergence else "compile",
                    detail=divergence,
                )
            )

        if self.trace:
            self._check_trace(probe, report)
        return report

    def _check_trace(self, probe: Probe, report: ProbeReport) -> None:
        """Diff trace aggregates against the counters: traced EBOX
        instruction spans and UCODE specifier spans must equal what the
        monitor counted.  A tracer forces the interpreted path, so the
        traced arm is its own run."""
        from repro.obs.query import TraceQuery
        from repro.obs.trace import Tracer

        tracer = Tracer(capacity=self.tracer_capacity)
        run = execute_probe(probe, "interpreted", tracer=tracer)
        if tracer.dropped:
            reason = "trace ring dropped {} events; aggregates not exact".format(
                tracer.dropped
            )
            report.skipped["trace.instruction_spans"] = reason
            report.skipped["trace.specifier_spans"] = reason
            return
        query = TraceQuery(tracer)
        spans = query.where(track="EBOX", phase="E").count()
        retired = run.events.instructions
        report.outcomes.append(
            ProbeOutcome(
                name="trace.instruction_spans",
                expected="== {} (instructions retired)".format(retired),
                actual=spans,
                ok=spans == retired,
                mode="traced",
                blame="obs.trace",
            )
        )
        spec_spans = query.where(
            track="UCODE", phase="B", name_in=("spec1", "spec26")
        ).count()
        spec_total = sum(run.events.specifier_counts.values())
        report.outcomes.append(
            ProbeOutcome(
                name="trace.specifier_spans",
                expected="== {} (specifiers processed)".format(spec_total),
                actual=spec_spans,
                ok=spec_spans == spec_total,
                mode="traced",
                blame="obs.trace",
            )
        )

    @staticmethod
    def _localize(run: ProbeRun) -> str:
        from repro.obs.invariants import localize_unclassified

        return localize_unclassified(run.counts, run.stalled, run.layout)

    def run(self, names: Optional[Sequence[str]] = None) -> List[ProbeReport]:
        probes = build_probes()
        if names is None:
            names = list(probes)
        missing = [name for name in names if name not in probes]
        if missing:
            raise ValidationError(
                "unknown probe(s): {} (know {})".format(
                    ", ".join(missing), ", ".join(probes)
                )
            )
        return [self.run_probe(probes[name]) for name in names]


def _blame_from_metric(metric: str) -> str:
    parts = metric.split(".")
    if parts[0] == "routine":
        return ".".join(parts[1:-1])
    if parts[0] == "matrix":
        return parts[1]
    if parts[0] == "stats":
        return "memory"
    if parts[0] in ("spec", "indexed"):
        return "cpu.events"
    return ""

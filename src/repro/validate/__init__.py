"""Refutation suite: directed microbenchmarks with analytic ground truth.

``repro validate`` and ``tests/validate/`` run every
:class:`~repro.validate.probes.Probe` through the real engine/monitor
path in all three compile modes and diff the counters against
expectations known *by construction* — see :mod:`repro.validate.probes`
for the model and :mod:`repro.validate.runner` for the execution and
blame localization.
"""

from repro.validate.probes import (
    CostModel,
    Expectation,
    Probe,
    ProbeError,
    build_probes,
    canonical_names,
)
from repro.validate.runner import (
    ALL_MODES,
    MODES,
    ProbeOutcome,
    ProbeReport,
    ProbeRun,
    RefutationRunner,
    ValidationError,
    execute_probe,
    resolve_metric,
)

__all__ = [
    "ALL_MODES",
    "MODES",
    "CostModel",
    "Expectation",
    "Probe",
    "ProbeError",
    "ProbeOutcome",
    "ProbeReport",
    "ProbeRun",
    "RefutationRunner",
    "ValidationError",
    "build_probes",
    "canonical_names",
    "execute_probe",
    "resolve_metric",
]

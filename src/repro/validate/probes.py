"""Directed microbenchmarks whose event counts are known by construction.

`repro check` proves the bookkeeping is *self-consistent*: cycles sum to
their Table 8 classification, instructions match the opcode counts.  It
cannot catch the model being *wrong* — a specifier charging one cycle
too many keeps every identity intact.  The probes here close that gap
the way CounterPoint and Röhl et al. use hardware counters: each probe
is a tiny program engineered so its event counts follow from first
principles — the cost tables in :mod:`repro.ucode.costs`, the operand
specifiers the assembler encoded, the pages and cache blocks the
program touches — and each ships with :class:`Expectation` objects the
:class:`~repro.validate.runner.RefutationRunner` diffs against a real
monitored run in every compile mode.

Two kinds of expectation:

* **exact** — counts that construction fully determines: instructions
  retired, per-routine compute cycles (``SPEC_COSTS``/``ExecProfile``
  fed through the same merge/patch rules the microcode applies), TB
  misses (one per distinct page), compulsory cache misses (one per
  distinct 8-byte block), specifier-mode tallies.
* **interval** — observables the SBI's queueing makes path-dependent
  (read-stall cycles when D-fills queue behind I-stream fills, IB
  starvation parity).  Every interval carries the *reason* for its
  slack; an interval without a stated reason is a bug.

The analytic model lives in :class:`CostModel`, which walks an
:class:`~repro.asm.assembler.Assembler` listing and accumulates exactly
the charges the EBox should make.  It is deliberately *independent* of
the engine's charging machinery — it reads the same cost tables but
reimplements the walk, so a disagreement refutes the engine's charging
path (or the model here), never vacuously agrees with it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.asm.assembler import Assembler
from repro.asm.operands import parse_operand
from repro.isa.opcodes import OpcodeGroup, opcode_by_mnemonic
from repro.isa.specifiers import AccessType, AddressingMode, TABLE4_ROW_FOR_MODE
from repro.memory import READ_MISS_STALL_CYCLES
from repro.ucode.costs import (
    INDEX_EXTRA_CYCLES,
    INTERRUPT_ENTRY_COMPUTE_CYCLES,
    INTERRUPT_ENTRY_WRITES,
    SPEC_COSTS,
    TB_MISS_COMPUTE_CYCLES,
    exec_profile,
)
from repro.ucode.routines import PATCHED_ROUTINES

#: Where probe code is loaded (page VPN 1 — data placement must avoid
#: TB index 1, the direct-mapped sets are indexed by VPN mod 64).
ORIGIN = 0x200

#: One-page scratch area for data probes; VPN 24 never collides with
#: the code page's TB set.
SCRATCH = 0x3000

PAGE = 512
BLOCK = 8

#: Memory addressing modes whose operand is read/written through the
#: cache (everything except register, literal and immediate forms).
_MEMORY_MODES = frozenset(
    mode
    for mode in SPEC_COSTS
    if mode
    not in (
        AddressingMode.REGISTER,
        AddressingMode.SHORT_LITERAL,
        AddressingMode.IMMEDIATE,
    )
)


class ProbeError(Exception):
    """A probe or expectation is malformed."""


@dataclass(frozen=True)
class Expectation:
    """One observable pinned to its analytically known value.

    Either ``exact`` is set, or both ``lo`` and ``hi`` are — and an
    interval must state the ``reason`` for its slack.  ``blame`` names
    the micro-routine (or subsystem) a violation indicts; the runner
    falls back to the metric's own routine path when empty.
    """

    metric: str
    exact: Optional[float] = None
    lo: Optional[float] = None
    hi: Optional[float] = None
    reason: str = ""
    blame: str = ""

    def __post_init__(self):
        interval = self.lo is not None or self.hi is not None
        if (self.exact is None) == (not interval):
            raise ProbeError(
                "expectation {!r} needs exactly one of exact= or lo=/hi=".format(
                    self.metric
                )
            )
        if interval and (self.lo is None or self.hi is None or not self.reason):
            raise ProbeError(
                "interval expectation {!r} needs lo, hi and a stated "
                "reason for the slack".format(self.metric)
            )

    @property
    def is_exact(self) -> bool:
        return self.exact is not None

    def check(self, actual: float) -> bool:
        if self.exact is not None:
            return actual == self.exact
        return self.lo <= actual <= self.hi

    def describe(self) -> str:
        if self.exact is not None:
            return "== {}".format(_fmt(self.exact))
        return "in [{}, {}] ({})".format(_fmt(self.lo), _fmt(self.hi), self.reason)

    def to_dict(self) -> dict:
        return {
            "metric": self.metric,
            "exact": self.exact,
            "lo": self.lo,
            "hi": self.hi,
            "reason": self.reason,
            "blame": self.blame,
        }


def _fmt(value: float) -> str:
    return str(int(value)) if float(value).is_integer() else "{:.2f}".format(value)


@dataclass(frozen=True)
class Probe:
    """A directed microbenchmark plus its ground truth.

    ``build`` returns a fresh :class:`Assembler` holding the program
    (rebuilt per run so probes stay picklable and stateless);
    ``map_ranges`` are ``(base, length)`` data windows to map beyond
    the loaded image; ``interrupt_label``, when set, posts one
    interrupt at that symbol before the run starts.
    """

    name: str
    title: str
    covers: str
    canonical: bool
    build: Callable[[], Assembler]
    expectations: Tuple[Expectation, ...]
    map_ranges: Tuple[Tuple[int, int], ...] = ()
    interrupt_label: str = ""
    interrupt_ipl: int = 20
    max_instructions: int = 10_000

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "title": self.title,
            "covers": self.covers,
            "canonical": self.canonical,
            "expectations": [exp.to_dict() for exp in self.expectations],
        }


# ---------------------------------------------------------------------------
# the analytic cost model
# ---------------------------------------------------------------------------


class CostModel:
    """Walk an assembled listing and accumulate the charges the
    microcode model prescribes.

    Valid for straight-line programs (no branch operands — the branch
    probes compute their own totals, since taken-ness is dynamic) whose
    data references all hit the TB and cache once the per-page /
    per-block compulsory misses accounted by the *probe builder* are
    added on top.
    """

    def __init__(self):
        self.instructions = 0
        #: non-stalled cycles per micro-routine, split by activity —
        #: ``compute[name]``, ``reads[name]``, ``writes[name]``.
        self.compute: Dict[str, int] = {}
        self.reads: Dict[str, int] = {}
        self.writes: Dict[str, int] = {}
        self.abort_cycles = 0
        self.spec_counts: Dict[Tuple[str, str], int] = {}
        self.indexed_counts: Dict[str, int] = {}

    # -- accumulation ----------------------------------------------------

    def _bump(self, table: Dict[str, int], routine: str, cycles: int) -> None:
        if cycles:
            table[routine] = table.get(routine, 0) + cycles

    def add_instruction(self, mnemonic: str, operand_texts: Sequence[str]) -> None:
        opcode = opcode_by_mnemonic(mnemonic)
        self.instructions += 1
        self._bump(self.compute, "decode.dispatch", 1)

        source_seen = False
        last_mode: Optional[AddressingMode] = None
        for position, (text, spec) in enumerate(zip(operand_texts, opcode.operands)):
            if spec.access is AccessType.BRANCH:
                raise ProbeError(
                    "CostModel is for straight-line code; {} has a branch "
                    "operand — compute its expectations by hand".format(mnemonic)
                )
            operand = parse_operand(text)
            mode = operand.mode
            if mode is None:
                raise ProbeError("label operands are not modelled: {!r}".format(text))
            indexed = operand.index_register is not None
            position_class = "spec1" if position == 0 else "spec26"
            # Microcode sharing: indexed specifiers run in the SPEC2-6
            # region even at position 0; the *event* tally keys on the
            # nominal position class.
            bank = "spec26" if (indexed or position > 0) else "spec1"
            routine = "{}.{}".format(bank, mode.name.lower())
            key = (position_class, TABLE4_ROW_FOR_MODE[mode])
            self.spec_counts[key] = self.spec_counts.get(key, 0) + 1
            if indexed:
                self.indexed_counts[position_class] = (
                    self.indexed_counts.get(position_class, 0) + 1
                )
                self._bump(self.compute, "spec26.index_shared", INDEX_EXTRA_CYCLES)

            cost = SPEC_COSTS[mode]
            self._bump(self.compute, routine, cost.address_cycles)
            if mode is AddressingMode.IMMEDIATE and routine in PATCHED_ROUTINES:
                self.abort_cycles += 1
            if mode in _MEMORY_MODES:
                self._bump(self.reads, routine, cost.pointer_reads)
                if spec.access in (AccessType.READ, AccessType.MODIFY):
                    self._bump(self.reads, routine, 1)
                if spec.access in (AccessType.WRITE, AccessType.MODIFY):
                    self._bump(self.writes, routine, 1)
            if spec.access is AccessType.READ:
                source_seen = True
            last_mode = mode

        exec_routine = "exec.{}".format(mnemonic.lower())
        if mnemonic == "HALT":
            # The HALT handler spends exactly one dispatch cycle; its
            # profile base models the (unsimulated) console handoff.
            cycles = 1
        else:
            cycles = exec_profile(opcode).base_cycles
        # The literal/register optimization (Section 5): the first
        # execute cycle merges with the last specifier cycle when a
        # simple instruction's last operand is a register or literal
        # and a source operand was fetched.
        merged = (
            opcode.group in (OpcodeGroup.SIMPLE, OpcodeGroup.FIELD)
            and source_seen
            and last_mode in (AddressingMode.REGISTER, AddressingMode.SHORT_LITERAL)
        )
        if merged:
            cycles -= 1
        if cycles > 0:
            self._bump(self.compute, exec_routine, cycles)
            if exec_routine in PATCHED_ROUTINES:
                self.abort_cycles += 1

    def add_listing(self, asm: Assembler) -> "CostModel":
        for _address, mnemonic, operands in asm.listing:
            self.add_instruction(mnemonic, operands)
        return self

    # -- derived totals --------------------------------------------------

    def routine_total(self, name: str) -> int:
        return (
            self.compute.get(name, 0)
            + self.reads.get(name, 0)
            + self.writes.get(name, 0)
        )

    def bank_compute(self, prefix: str) -> int:
        return sum(
            cycles
            for name, cycles in self.compute.items()
            if name.startswith(prefix)
        )

    def data_reads(self) -> int:
        return sum(self.reads.values())

    def data_writes(self) -> int:
        return sum(self.writes.values())


def model_expectations(
    model: CostModel,
    tb_services: int,
    data_tb_misses: int,
    data_writes_buffered: Optional[int] = None,
) -> List[Expectation]:
    """The expectations every straight-line all-hit probe shares.

    ``tb_services`` counts TB-miss services the run performs (code
    pages + data pages, each exactly once — the probes are built so no
    page is ever evicted); each service charges
    ``TB_MISS_COMPUTE_CYCLES`` at ``memmgmt.tb_miss``, one abort-detour
    cycle, and one PTE read.
    """
    expectations = [
        Expectation("instructions", exact=model.instructions),
        Expectation(
            "matrix.decode.compute",
            exact=model.instructions,
            blame="decode.dispatch",
        ),
        Expectation(
            "matrix.memmgmt.compute",
            exact=tb_services * TB_MISS_COMPUTE_CYCLES,
            blame="memmgmt.tb_miss",
        ),
        Expectation(
            "matrix.abort.compute",
            exact=model.abort_cycles + tb_services,
            blame="abort",
        ),
        Expectation("stats.tb_d_misses", exact=data_tb_misses),
        Expectation("stats.unaligned_reads", exact=0),
        Expectation("stats.unaligned_writes", exact=0),
        Expectation(
            "stats.write_buffer_writes",
            exact=(
                model.data_writes()
                if data_writes_buffered is None
                else data_writes_buffered
            ),
        ),
    ]
    for bank in ("spec1", "spec26"):
        expectations.append(
            Expectation(
                "matrix.{}.compute".format(bank),
                exact=model.bank_compute(bank + "."),
                blame=bank,
            )
        )
    # Per-routine totals give the refutation its blame resolution: a
    # skewed charge shows up in exactly the routine that was skewed.
    # decode.dispatch is excluded: its IB-wait slot shares the routine,
    # so its non-stalled total rides on fetch parity — the
    # matrix.decode.compute cell above already pins the dispatch count.
    for name in sorted(
        set(model.compute) | set(model.reads) | set(model.writes)
    ):
        if name == "decode.dispatch":
            continue
        expectations.append(
            Expectation(
                "routine.{}.cycles".format(name),
                exact=model.routine_total(name),
                blame=name,
            )
        )
    for (position_class, row), count in sorted(model.spec_counts.items()):
        expectations.append(
            Expectation(
                "spec.{}.{}".format(position_class, row),
                exact=count,
                blame="{}.{}".format(position_class, row),
            )
        )
    for position_class, count in sorted(model.indexed_counts.items()):
        expectations.append(
            Expectation("indexed.{}".format(position_class), exact=count)
        )
    return expectations


def _read_stall_interval(metric: str, misses: int, blame: str = "") -> Expectation:
    """Read-stall cycles for ``misses`` compulsory cache misses: exactly
    ``READ_MISS_STALL_CYCLES`` each when the SBI is idle, more when the
    D-stream fill queues behind I-stream fills."""
    return Expectation(
        metric,
        lo=misses * READ_MISS_STALL_CYCLES,
        hi=misses * READ_MISS_STALL_CYCLES * 3,
        reason="D-stream fills queue behind I-stream SBI traffic; "
        "{} cycles each only when the bus is idle".format(READ_MISS_STALL_CYCLES),
        blame=blame,
    )


def _istream_blocks(code_bytes: int) -> Tuple[int, int]:
    """Compulsory I-stream cache misses for a straight-run image of
    ``code_bytes`` starting block-aligned: one per 8-byte block, plus at
    most one block of prefetch past the halt."""
    lo = -(-code_bytes // BLOCK)
    return lo, lo + 1


def _istream_interval(code_bytes: int) -> Expectation:
    lo, hi = _istream_blocks(code_bytes)
    return Expectation(
        "stats.cache_i_read_misses",
        lo=lo,
        hi=hi,
        reason="one compulsory miss per 8-byte code block; the IB may "
        "prefetch one block past the halt",
    )


# ---------------------------------------------------------------------------
# probe builders
# ---------------------------------------------------------------------------


def _straightline_probe(
    name: str,
    title: str,
    covers: str,
    build: Callable[[], Assembler],
    canonical: bool = False,
    data_pages: int = 0,
    extra: Sequence[Expectation] = (),
    map_ranges: Tuple[Tuple[int, int], ...] = (),
) -> Probe:
    """Assemble once to derive the model; ship the builder for runs."""
    asm = build()
    code_bytes = len(asm.assemble())
    model = CostModel().add_listing(asm)
    expectations = model_expectations(
        model, tb_services=1 + data_pages, data_tb_misses=data_pages
    )
    expectations.append(_istream_interval(code_bytes))
    expectations.extend(extra)
    return Probe(
        name=name,
        title=title,
        covers=covers,
        canonical=canonical,
        build=build,
        expectations=tuple(expectations),
        map_ranges=map_ranges,
    )


def _probe_reg_mov_chain() -> Probe:
    n = 64

    def build() -> Assembler:
        asm = Assembler(origin=ORIGIN)
        for _ in range(n):
            asm.instr("MOVL", "R1", "R2")
        asm.instr("HALT")
        return asm

    return _straightline_probe(
        "reg_mov_chain",
        "{} register-to-register moves: pure decode/dispatch, zero "
        "memory traffic, every execute cycle merged away".format(n),
        covers="decode",
        canonical=True,
        build=build,
        extra=[
            # The merge optimization must eat the MOVL execute cycle
            # entirely: the SIMPLE row never ticks.
            Expectation("matrix.simple.compute", exact=0, blame="exec.movl"),
            Expectation("stats.cache_d_read_misses", exact=1),  # the code PTE
            Expectation("stats.sbi_writes", exact=0),
        ],
    )


def _probe_reg_alu_mix() -> Probe:
    n = 16

    def build() -> Assembler:
        asm = Assembler(origin=ORIGIN)
        for _ in range(n):
            asm.instr("ADDL2", "R1", "R2")
            asm.instr("SUBL2", "R3", "R4")
            asm.instr("MOVL", "R5", "R6")
            asm.instr("TSTL", "R7")
            asm.instr("INCL", "R8")
        asm.instr("HALT")
        return asm

    return _straightline_probe(
        "reg_alu_mix",
        "ALU mix over registers: per-opcode ExecProfile cycles with the "
        "merge rule applied exactly where its conditions hold",
        covers="decode",
        build=build,
        extra=[Expectation("stats.cache_d_read_misses", exact=1)],
    )


def _probe_merge_elision() -> Probe:
    n = 16

    def build() -> Assembler:
        asm = Assembler(origin=ORIGIN)
        for _ in range(n):
            asm.instr("MOVL", "R1", "R2")  # source read -> merged
        for _ in range(n):
            asm.instr("CLRL", "R3")  # no source operand -> not merged
        asm.instr("HALT")
        return asm

    return _straightline_probe(
        "merge_elision",
        "the literal/register optimization, isolated: merged MOVLs "
        "charge zero execute cycles, unmergeable CLRLs charge full base",
        covers="decode",
        build=build,
        extra=[
            # The merged MOVLs never tick their execute routine at all;
            # the CLRL expectation comes from the walker (full base).
            Expectation("routine.exec.movl.cycles", exact=0, blame="exec.movl"),
        ],
    )


def _spec_ladder_sources(scratch: int) -> List[str]:
    return [
        "#5",
        "I^#4660",
        "R1",
        "(R6)",
        "(R6)+",
        "-(R6)",
        "B^4(R6)",
        "W^8(R6)",
        "L^12(R6)",
        "@#{}".format(scratch + 136),
        "@B^4(R6)",
        "@(R7)+",
    ]


def _probe_spec_ladder() -> Probe:
    n = 8
    sources = _spec_ladder_sources(SCRATCH)

    def build() -> Assembler:
        asm = Assembler(origin=ORIGIN)
        asm.instr("MOVL", "I^#{}".format(SCRATCH + 64), "R6")
        asm.instr("MOVL", "I^#{}".format(SCRATCH + 256), "R7")
        # Pointer cells for the deferred modes: @B^4(R6) chases the
        # longword at R6+4; each @(R7)+ chases one table entry.
        asm.instr("MOVL", "I^#{}".format(SCRATCH + 128), "B^4(R6)")
        for i in range(n):
            asm.instr(
                "MOVL", "I^#{}".format(SCRATCH + 132), "B^{}(R7)".format(4 * i)
            )
        for _ in range(n):
            for source in sources:
                asm.instr("MOVL", source, "R2")
        asm.instr("HALT")
        return asm

    return _straightline_probe(
        "spec_ladder",
        "every Table 4 addressing-mode row exercised {} times: exact "
        "per-mode operand tallies and SPEC_COSTS address cycles".format(n),
        covers="specifier",
        canonical=True,
        build=build,
        data_pages=1,
        map_ranges=((SCRATCH, PAGE),),
    )


def _probe_spec_indexed() -> Probe:
    n = 16

    def build() -> Assembler:
        asm = Assembler(origin=ORIGIN)
        asm.instr("MOVL", "I^#{}".format(SCRATCH), "R6")
        asm.instr("MOVL", "I^#1", "R3")
        for _ in range(n):
            asm.instr("MOVL", "(R6)[R3]", "R2")
        asm.instr("HALT")
        return asm

    return _straightline_probe(
        "spec_indexed",
        "indexed specifiers: the shared SPEC2-6 index microcode charges "
        "INDEX_EXTRA_CYCLES even for first-position operands",
        covers="specifier",
        build=build,
        data_pages=1,
        map_ranges=((SCRATCH, PAGE),),
        extra=[
            Expectation(
                "routine.spec26.index_shared.cycles",
                exact=n * INDEX_EXTRA_CYCLES,
                blame="spec26.index_shared",
            ),
            # All n reads land on the same block: one compulsory data
            # miss, one PTE block, one code PTE block.
            Expectation("stats.cache_d_read_misses", exact=3),
        ],
    )


def _probe_spec_deferred() -> Probe:
    n = 16

    def build() -> Assembler:
        asm = Assembler(origin=ORIGIN)
        asm.instr("MOVL", "I^#{}".format(SCRATCH), "R6")
        asm.instr("MOVL", "I^#{}".format(SCRATCH + 64), "B^4(R6)")
        for _ in range(n):
            asm.instr("MOVL", "@B^4(R6)", "R2")
        asm.instr("HALT")
        return asm

    return _straightline_probe(
        "spec_deferred",
        "deferred displacement: each operand costs its address cycles "
        "plus a pointer read plus the data read, all at one routine",
        covers="specifier",
        build=build,
        data_pages=1,
        map_ranges=((SCRATCH, PAGE),),
        extra=[
            Expectation(
                "routine.spec1.byte_displacement_deferred.cycles",
                exact=n
                * (
                    SPEC_COSTS[
                        AddressingMode.BYTE_DISPLACEMENT_DEFERRED
                    ].address_cycles
                    + SPEC_COSTS[
                        AddressingMode.BYTE_DISPLACEMENT_DEFERRED
                    ].pointer_reads
                    + 1
                ),
                blame="spec1.byte_displacement_deferred",
            ),
        ],
    )


def _tb_page_base() -> int:
    # Data pages start at VPN 2: the code page is VPN 1, and the TB's
    # direct-mapped sets are indexed by VPN mod 64 — starting at 2 with
    # at most 32 pages means no data page can evict the code page (or
    # another data page) and every miss is compulsory.
    return 2 * PAGE


def _probe_tb_stride(revisit: bool = False) -> Probe:
    pages = 4 if revisit else 32
    base = _tb_page_base()
    rounds = 2 if revisit else 1

    def build() -> Assembler:
        asm = Assembler(origin=ORIGIN)
        for _ in range(rounds):
            for i in range(pages):
                asm.instr("MOVL", "@#{}".format(base + i * PAGE), "R2")
        asm.instr("HALT")
        return asm

    # PTE geometry: 4-byte PTEs pair two-per-cache-block.  The data
    # pages' PTEs are contiguous from VPN 2 (PTE offsets 8..), the code
    # page's PTE (VPN 1) lives in the preceding block.
    pte_blocks = 1 + len(
        {(2 + i) * 4 // BLOCK for i in range(pages)}
    )
    data_blocks = pages  # page stride: every read its own block
    if revisit:
        title = (
            "{} pages touched twice: the second round must hit the TB — "
            "retention, not just fills".format(pages)
        )
        extra_reason = None
    else:
        title = (
            "{}-page pointer stride: exactly one TB miss per page, "
            "17 service cycles each, one PTE read apiece".format(pages)
        )
        extra_reason = None
    extra = [
        Expectation("stats.tb_misses", exact=pages + 1),
        Expectation("stats.tb_i_misses", exact=1),
        Expectation(
            "stats.cache_d_read_misses", exact=data_blocks + pte_blocks
        ),
        Expectation(
            "routine.memmgmt.tb_miss.cycles",
            exact=(pages + 1) * (TB_MISS_COMPUTE_CYCLES + 1),
            blame="memmgmt.tb_miss",
        ),
        _read_stall_interval(
            "matrix.spec1.rstall", data_blocks, blame="spec1.absolute"
        ),
    ]
    return _straightline_probe(
        "tb_revisit" if revisit else "tb_stride",
        title,
        covers="tb",
        canonical=not revisit,
        build=build,
        data_pages=pages,
        map_ranges=((base, pages * PAGE),),
        extra=extra,
    )


def _probe_cache_seq(revisit: bool = False) -> Probe:
    blocks = 8 if revisit else 32
    rounds = 2 if revisit else 1

    def build() -> Assembler:
        asm = Assembler(origin=ORIGIN)
        for _ in range(rounds):
            for i in range(blocks):
                asm.instr("MOVL", "@#{}".format(SCRATCH + i * BLOCK), "R2")
        asm.instr("HALT")
        return asm

    # One compulsory miss per data block, plus the data page's PTE read
    # and the code page's PTE read (each in its own block).
    d_misses = blocks + 2
    extra = [
        Expectation("stats.cache_d_read_misses", exact=d_misses),
        _read_stall_interval(
            "matrix.spec1.rstall", blocks, blame="spec1.absolute"
        ),
    ]
    if revisit:
        title = (
            "{} blocks read twice: the second round must hit the cache "
            "(block retention under the probe's working set)".format(blocks)
        )
    else:
        title = (
            "{} reads at 8-byte stride in one page: one compulsory "
            "cache miss per block, one TB fill total".format(blocks)
        )
    return _straightline_probe(
        "cache_revisit" if revisit else "cache_seq_reads",
        title,
        covers="cache",
        canonical=not revisit,
        build=build,
        data_pages=1,
        map_ranges=((SCRATCH, PAGE),),
        extra=extra,
    )


def _probe_ib_starvation() -> Probe:
    n = 32

    def build() -> Assembler:
        asm = Assembler(origin=ORIGIN)
        for _ in range(n):
            asm.instr("MOVL", "I^#305419896", "R2")  # 7-byte instruction
        asm.instr("HALT")
        return asm

    code_bytes = 7 * n + 1
    lo_blocks, _hi = _istream_blocks(code_bytes)
    return _straightline_probe(
        "ib_starvation",
        "7-byte immediate moves back to back: the 4-cycle work loop "
        "cannot hide the 6-cycle SBI fill each 8-byte code block costs",
        covers="decode",
        build=build,
        extra=[
            Expectation(
                "matrix.decode.ibstall",
                lo=n // 2,
                hi=code_bytes,
                reason="each code block's {}-cycle fill starves the "
                "7-byte-per-instruction decode loop; exact overlap "
                "depends on fetch parity".format(READ_MISS_STALL_CYCLES),
                blame="decode.dispatch",
            ),
            Expectation(
                "stats.ib_bytes_delivered",
                lo=code_bytes,
                hi=code_bytes + BLOCK,
                reason="every program byte is delivered once; the IB may "
                "prefetch up to one block past the halt",
            ),
        ],
    )


def _probe_brb_ladder() -> Probe:
    n = 32

    def build() -> Assembler:
        asm = Assembler(origin=ORIGIN)
        for i in range(n):
            asm.instr("BRB", "hop{}".format(i))
            asm.label("hop{}".format(i))
        asm.instr("HALT")
        return asm

    # Hand model (CostModel refuses branch operands): each BRB is
    # taken — 1 decode, 1 bdisp cycle for the displacement, base +
    # taken-extra execute cycles, then an IB redirect to the next
    # sequential address (same or next block: no extra compulsory
    # misses beyond the straight-run count).
    profile = exec_profile(opcode_by_mnemonic("BRB"))
    per_exec = profile.base_cycles + profile.taken_extra_cycles
    code_bytes = 2 * n + 1
    expectations = [
        Expectation("instructions", exact=n + 1),
        Expectation("matrix.decode.compute", exact=n + 1, blame="decode.dispatch"),
        Expectation("matrix.bdisp.compute", exact=n, blame="bdisp"),
        Expectation(
            "routine.exec.brb.cycles", exact=n * per_exec, blame="exec.brb"
        ),
        Expectation(
            "matrix.memmgmt.compute",
            exact=TB_MISS_COMPUTE_CYCLES,
            blame="memmgmt.tb_miss",
        ),
        Expectation("matrix.abort.compute", exact=1, blame="abort"),
        Expectation("stats.tb_d_misses", exact=0),
        Expectation("stats.write_buffer_writes", exact=0),
        _istream_interval(code_bytes),
    ]
    return Probe(
        name="brb_ladder",
        title="{} taken branches: one bdisp cycle and one redirect "
        "apiece, I-stream misses bounded by the straight-run blocks".format(n),
        covers="decode",
        canonical=False,
        build=build,
        expectations=tuple(expectations),
    )


def _probe_sob_loop() -> Probe:
    count = 16

    def build() -> Assembler:
        asm = Assembler(origin=ORIGIN)
        asm.instr("MOVL", "I^#{}".format(count), "R0")
        asm.label("loop")
        asm.instr("SOBGTR", "R0", "loop")
        asm.instr("HALT")
        return asm

    # Hand model: MOVL I^#,R0 (merged execute, patched-immediate
    # abort), then SOBGTR executes `count` times — taken on all but the
    # last — and HALT.  SOBGTR's entry is control-store patched: one
    # abort detour per execution.
    profile = exec_profile(opcode_by_mnemonic("SOBGTR"))
    taken = count - 1
    sob_cycles = count * profile.base_cycles + taken * profile.taken_extra_cycles
    expectations = [
        Expectation("instructions", exact=count + 2),
        Expectation(
            "matrix.decode.compute", exact=count + 2, blame="decode.dispatch"
        ),
        Expectation("matrix.bdisp.compute", exact=taken, blame="bdisp"),
        Expectation(
            "routine.exec.sobgtr.cycles", exact=sob_cycles, blame="exec.sobgtr"
        ),
        # aborts: `count` patched SOBGTR entries + 1 patched immediate
        # + 1 TB-miss detour for the code page.
        Expectation("matrix.abort.compute", exact=count + 2, blame="abort"),
        Expectation("spec.spec1.register", exact=count),
        Expectation(
            "matrix.memmgmt.compute",
            exact=TB_MISS_COMPUTE_CYCLES,
            blame="memmgmt.tb_miss",
        ),
        Expectation("stats.tb_d_misses", exact=0),
    ]
    return Probe(
        name="sob_loop",
        title="a {}-iteration SOBGTR loop: taken-branch extras on all "
        "but the final fall-through, patched-entry aborts per execution".format(
            count
        ),
        covers="decode",
        canonical=False,
        build=build,
        expectations=tuple(expectations),
    )


def _probe_interrupt_entry() -> Probe:
    def build() -> Assembler:
        asm = Assembler(origin=ORIGIN)
        asm.instr("MOVL", "R1", "R2")  # pre-empted: never executes
        asm.instr("HALT")
        asm.label("handler")
        asm.instr("HALT")
        return asm

    expectations = [
        # Delivery pre-empts the first instruction; the handler's HALT
        # is the only instruction that retires.
        Expectation("instructions", exact=1),
        Expectation("events.interrupts_delivered", exact=1),
        Expectation(
            "matrix.intexc.compute",
            exact=INTERRUPT_ENTRY_COMPUTE_CYCLES,
            blame="intexc.interrupt",
        ),
        Expectation(
            "matrix.intexc.write",
            exact=INTERRUPT_ENTRY_WRITES,
            blame="intexc.interrupt",
        ),
        Expectation(
            "routine.intexc.interrupt.cycles",
            exact=INTERRUPT_ENTRY_COMPUTE_CYCLES + INTERRUPT_ENTRY_WRITES,
            blame="intexc.interrupt",
        ),
        Expectation("matrix.decode.compute", exact=1, blame="decode.dispatch"),
        Expectation("matrix.system.compute", exact=1, blame="exec.halt"),
        Expectation("stats.write_buffer_writes", exact=INTERRUPT_ENTRY_WRITES),
        # Two TB services: the code page (I-stream) and the kernel
        # stack page the PC/PSL pushes touch.
        Expectation(
            "matrix.memmgmt.compute",
            exact=2 * TB_MISS_COMPUTE_CYCLES,
            blame="memmgmt.tb_miss",
        ),
        Expectation("stats.tb_d_misses", exact=1),
        Expectation(
            "matrix.intexc.wstall",
            lo=0,
            hi=12,
            reason="the PC/PSL pushes drain through the write buffer "
            "back to back; the stall depends on SBI timing",
        ),
    ]
    return Probe(
        name="interrupt_entry",
        title="one posted interrupt, delivered before the first "
        "instruction: 14 entry cycles, two stack pushes, one retired "
        "handler instruction",
        covers="interrupt",
        canonical=True,
        build=build,
        expectations=tuple(expectations),
        interrupt_label="handler",
    )


def build_probes() -> Dict[str, Probe]:
    """All probes, keyed by name, in presentation order."""
    probes = [
        _probe_reg_mov_chain(),
        _probe_reg_alu_mix(),
        _probe_merge_elision(),
        _probe_spec_ladder(),
        _probe_spec_indexed(),
        _probe_spec_deferred(),
        _probe_tb_stride(),
        _probe_tb_stride(revisit=True),
        _probe_cache_seq(),
        _probe_cache_seq(revisit=True),
        _probe_ib_starvation(),
        _probe_brb_ladder(),
        _probe_sob_loop(),
        _probe_interrupt_entry(),
    ]
    return {probe.name: probe for probe in probes}


def canonical_names() -> List[str]:
    """The five canonical probes (one per covered path) CI runs."""
    return [probe.name for probe in build_probes().values() if probe.canonical]

"""repro — the VAX-11/780 micro-PC histogram study, reproduced.

Reproduction of Emer & Clark, "A Characterization of Processor
Performance in the VAX-11/780" (ISCA 1984 / ISCA-25 retrospective 1998).

Public API quick reference::

    from repro import VAX780, UPCMonitor, Assembler
    from repro.core.experiment import run_workload, run_composite_experiment
    from repro.core import tables

See README.md for the tour and EXPERIMENTS.md for paper-vs-measured
results.
"""

from repro.asm import Assembler
from repro.core.monitor import UPCMonitor
from repro.cpu import VAX780

__version__ = "1.0.0"

__all__ = ["Assembler", "UPCMonitor", "VAX780", "__version__"]

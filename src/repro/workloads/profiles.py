"""The five workload profiles.

Section 2.2 of the paper describes five measurement settings:

* two **live timesharing** machines inside Digital engineering — one
  lightly loaded research machine (~15 users: editing, program
  development, mail) and one heavier CPU-development machine (~30 users,
  adding circuit simulation and microcode development);
* three **RTE-driven** synthetic populations — *educational* (40 users,
  program development in several languages, file manipulation),
  *scientific/engineering* (40 users, numeric computation plus program
  development), and *commercial* (32 users, transactional database
  inquiries and updates).

Each profile sets the instruction-mix weights the code generator draws
from, plus interactivity (system-service rate) and locality parameters.
The composite of all five is what every table of the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple


@dataclass(frozen=True)
class WorkloadProfile:
    """Parameters for one synthetic workload."""

    name: str
    description: str
    seed: int
    users: int
    #: weights for the generator's slot categories (normalized at use)
    mix: Dict[str, float]
    #: CHMK system services per ~1000 slots (drives kernel activity)
    syscall_weight: float
    #: share of syscalls that are blocking terminal QIOs
    qio_fraction: float
    #: character-string lengths (the paper infers 36-44 bytes)
    string_length: Tuple[int, int] = (36, 44)
    #: packed-decimal digit counts
    decimal_digits: Tuple[int, int] = (5, 15)
    #: registers saved by procedure entry masks
    call_mask_bits: Tuple[int, int] = (2, 4)
    #: SOB-loop iteration counts (the paper: about 10)
    loop_iterations: Tuple[int, int] = (8, 12)
    #: pages of process-private data the generator scatters accesses over
    data_pages: int = 64
    #: number of code blocks in the generated ring
    blocks: int = 90
    #: slots per block
    slots_per_block: int = 12


# Slot categories the generator understands:
#   data      - scalar moves/ALU with drawn addressing modes
#   branch    - conditional branch pattern (~50% taken)
#   loop      - a SOB loop of ~10 iterations
#   call      - CALLS to a leaf procedure (+ RET)
#   bsb       - BSB/RSB subroutine pattern
#   case      - CASEB dispatch
#   fieldop   - EXTZV/INSV/FFS pattern
#   bitbranch - BBS/BBC pattern
#   floatop   - F_floating arithmetic
#   muldiv    - integer multiply/divide
#   charop    - MOVC3/CMPC3/LOCC on 36-44 byte strings
#   decop     - packed-decimal arithmetic
#   queueop   - INSQUE/REMQUE pair
#   pushpop   - PUSHR/POPR of ~8 registers
#   syscall   - CHMK service

# Weights are *slot draw* probabilities; a slot can expand to many
# dynamic instructions (a loop slot executes ~25), so these are tuned so
# the resulting dynamic instruction mix lands on Tables 1 and 2.
_BASE_MIX = {
    "data": 40.0,
    "branch": 62.0,
    "loop": 1.2,
    "call": 3.6,
    "bsb": 6.3,
    "case": 2.0,
    "fieldop": 9.0,
    "bitbranch": 12.0,
    "floatop": 6.0,
    "muldiv": 1.6,
    "charop": 0.9,
    "decop": 0.04,
    "queueop": 1.3,
    "pushpop": 0.9,
    "syscall": 0.18,
}


def _mix(**overrides: float) -> Dict[str, float]:
    mixed = dict(_BASE_MIX)
    mixed.update(overrides)
    return mixed


PROFILES: Dict[str, WorkloadProfile] = {
    "timesharing_light": WorkloadProfile(
        name="timesharing_light",
        description=(
            "Live timesharing stand-in: research group machine, ~15 users, "
            "text editing, program development, electronic mail"
        ),
        seed=101,
        users=15,
        mix=_mix(charop=1.3, syscall=0.20, floatop=3.6),
        syscall_weight=1.0,
        qio_fraction=0.18,
        data_pages=56,
    ),
    "timesharing_heavy": WorkloadProfile(
        name="timesharing_heavy",
        description=(
            "Live timesharing stand-in: VAX CPU development machine, ~30 "
            "users, timesharing plus circuit simulation and microcode work"
        ),
        seed=202,
        users=30,
        mix=_mix(floatop=6.5, muldiv=2.4, data=38.0),
        syscall_weight=0.8,
        qio_fraction=0.15,
        data_pages=56,
    ),
    "educational": WorkloadProfile(
        name="educational",
        description=(
            "RTE: educational environment, 40 simulated users doing program "
            "development in various languages and file manipulation"
        ),
        seed=303,
        users=40,
        mix=_mix(call=3.2, bsb=7.0, charop=0.9, syscall=0.22),
        syscall_weight=1.2,
        qio_fraction=0.20,
        data_pages=40,
    ),
    "scientific": WorkloadProfile(
        name="scientific",
        description=(
            "RTE: scientific/engineering environment, 40 simulated users "
            "doing scientific computation and program development"
        ),
        seed=404,
        users=40,
        mix=_mix(floatop=9.5, muldiv=3.2, loop=1.6, data=36.0),
        syscall_weight=0.6,
        qio_fraction=0.12,
        data_pages=72,
    ),
    "commercial": WorkloadProfile(
        name="commercial",
        description=(
            "RTE: commercial transaction-processing environment, 32 "
            "simulated users doing database inquiries and updates"
        ),
        seed=505,
        users=32,
        mix=_mix(decop=0.16, charop=2.2, queueop=2.2, syscall=0.26, fieldop=10.5),
        syscall_weight=1.4,
        qio_fraction=0.22,
        data_pages=52,
    ),
}

#: The composite the paper reports is the sum of these five.
COMPOSITE_WORKLOAD_NAMES = [
    "timesharing_light",
    "timesharing_heavy",
    "educational",
    "scientific",
    "commercial",
]


def profile_by_name(name: str) -> WorkloadProfile:
    try:
        return PROFILES[name]
    except KeyError:
        raise KeyError(
            "unknown workload {!r}; known: {}".format(name, sorted(PROFILES))
        ) from None

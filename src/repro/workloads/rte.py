"""The Remote Terminal Emulator (RTE).

The paper's three synthetic workloads were driven by an RTE — "a PDP-11
with many asynchronous terminal interfaces; output characters generated
by the RTE from canned user scripts are seen as terminal input
characters by the VAX" (Section 2.2, citing Greenbaum and the NBS
survey).

This class plays the PDP-11's role: it owns a population of simulated
users, each looping over a canned script of keystrokes with think time
between bursts, and feeds the kernel's terminal interrupt source.  A
keystroke targets the process currently waiting for terminal input when
there is one — completing its QIO and waking it — mirroring how
interactive jobs progressed on the measured systems.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.vms.kernel import VMSKernel
from repro.vms.process import ProcessState

#: Canned user scripts: what the simulated users "type", looped.
CANNED_SCRIPTS = {
    "educational": "edit prog.pas\ncompile prog\nrun prog\nmail\n",
    "scientific": "run simulate step=0.01 n=10000\nplot results\n",
    "commercial": "inquire account 4417\nupdate balance +125.50\ncommit\n",
    "timesharing": "edit notes.txt\nsend report\ndir\ntype readme\n",
}


@dataclass
class _User:
    script: str
    position: int = 0

    def next_char(self) -> int:
        char = ord(self.script[self.position % len(self.script)])
        self.position += 1
        return char & 0xFF


class RemoteTerminalEmulator:
    """Feeds scripted keystrokes into the kernel's terminal interrupts."""

    def __init__(self, kernel: VMSKernel, users: int, script_name: str, seed: int = 7):
        script = CANNED_SCRIPTS.get(script_name, CANNED_SCRIPTS["timesharing"])
        self.kernel = kernel
        self.users = [_User(script=script, position=i * 3) for i in range(users)]
        self._random = random.Random(seed)
        self.keystrokes = 0
        kernel.terminal_source = self.keystroke

    def keystroke(self, kernel: VMSKernel) -> Optional[Tuple[int, int]]:
        """Called by the kernel's terminal timer: one arriving character.

        Returns (pid, char) or None to suppress the interrupt.
        """
        if not self.users or not kernel.processes:
            return None
        user = self._random.choice(self.users)
        char = user.next_char()
        self.keystrokes += 1
        blocked = [p for p in kernel.processes if p.state is ProcessState.BLOCKED]
        if blocked:
            target = self._random.choice(blocked)
        else:
            target = self._random.choice(kernel.processes)
        return (target.pid, char)

"""Workload synthesis: the stand-in for the paper's five workloads.

The original measurements ran for an hour each on live timesharing
machines and RTE-driven synthetic user populations; those workloads are
unrecoverable.  This package synthesizes instruction streams whose
*architectural* event mix is calibrated around the paper's published
composite (Tables 1-4), differentiated per workload the way the paper
describes them: program development and editing for the timesharing and
educational loads, numeric computation for the scientific load,
transaction processing (decimal/character heavy) for the commercial
load.
"""

from repro.workloads.profiles import (
    WorkloadProfile,
    PROFILES,
    profile_by_name,
    COMPOSITE_WORKLOAD_NAMES,
)
from repro.workloads.codegen import generate_program, GeneratedProgram
from repro.workloads.rte import RemoteTerminalEmulator

__all__ = [
    "WorkloadProfile",
    "PROFILES",
    "profile_by_name",
    "COMPOSITE_WORKLOAD_NAMES",
    "generate_program",
    "GeneratedProgram",
    "RemoteTerminalEmulator",
]

"""Synthesize executable VAX programs from a workload profile.

The generator emits a *ring* of basic blocks (the program runs until its
quantum ends or the measurement stops — there is no exit), each filled
with slots drawn from the profile's category mix:

* scalar data operations with operand specifiers drawn from a Table 4-
  like addressing-mode distribution over a process-private data region;
* conditional branches with ~50 % taken rate (entropy from a counter
  register), loop branches iterating ~10 times, subroutine and procedure
  calls, CASE dispatches, bit-field and bit-branch work;
* F_floating and integer multiply/divide kernels;
* character-string and packed-decimal operations on 36-44 byte strings
  and 5-15 digit numbers (the shapes the paper reports);
* CHMK system services, including blocking terminal QIOs that hand the
  CPU to another process — the multiprogramming behaviour the monitor
  was built to capture.

Register conventions: R0-R3 scratch, R4 entropy counter, R5 pointer
scratch, R6 scalar base, R7 pointer-table base, R8 string/decimal base,
R9 queue base, R10 loop counter, R11 index register.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.asm import Assembler
from repro.isa.datatypes import packed_decimal_encode, packed_size
from repro.workloads.profiles import WorkloadProfile

CODE_ORIGIN = 0x1000
DATA_ORIGIN = 0x40000

# Data-region layout (offsets from DATA_ORIGIN).
_QUEUE_OFF = 0x000  # header + entries (64 bytes)
_SCALAR_OFF = 0x100  # 1 KB of longwords
_PTR_OFF = 0x500  # 64 pointers into the scalar area
_STRING_OFF = 0x600  # four 64-byte string buffers
_PACKED_OFF = 0x700  # four 16-byte packed-decimal slots
_FLOAT_OFF = 0x740  # a few F_floating cells
_MASK_FC_OFF = 0x760  # byte mask 0xFC (CASE selector extraction)
_MASK_FF00_OFF = 0x764  # longword mask 0xFFFFFF00 (mul/div operand bounding)
_CRC_TABLE_OFF = 0x780  # 16-entry CRC-32 nibble table
_EXTENT_OFF = 0x800  # start of the far-scatter area


@dataclass
class GeneratedProgram:
    """An assembled workload program plus its initialised data image."""

    name: str
    code: bytes
    code_origin: int
    data: bytes
    data_origin: int
    #: generator bookkeeping: slots emitted per category
    slot_counts: Dict[str, int]

    @property
    def entry(self) -> int:
        return self.code_origin


class _Emitter:
    """Emits one program; holds the RNG and label numbering."""

    def __init__(self, profile: WorkloadProfile, variant: int):
        self.profile = profile
        self.rng = random.Random((profile.seed << 8) ^ variant)
        self.asm = Assembler(origin=CODE_ORIGIN)
        self.label_counter = 0
        self.slot_counts: Dict[str, int] = {}
        self.procedures: List[str] = []
        self.subroutines: List[str] = []
        self.data_extent = _EXTENT_OFF + (profile.data_pages * 512 - _EXTENT_OFF)

    # -- helpers ---------------------------------------------------------

    def _fresh(self, stem: str) -> str:
        self.label_counter += 1
        return "{}_{}".format(stem, self.label_counter)

    def _scalar_disp(self) -> int:
        """A displacement into the scalar/extent area off R6.

        Mostly near (byte displacement, good locality), with a tail
        spread over the whole data extent — the knob that sets D-stream
        cache behaviour.
        """
        rng = self.rng
        limit = self.profile.data_pages * 512 - 4
        if rng.random() < 0.38:
            offset = _SCALAR_OFF + 4 * rng.randrange(0, 32)
        elif rng.random() < 0.38:
            offset = _SCALAR_OFF + 4 * rng.randrange(0, 256)
        else:
            offset = _EXTENT_OFF + 4 * rng.randrange(0, max(1, (limit - _EXTENT_OFF) // 4))
        return min(offset, limit) & ~3

    def _pointer_disp(self) -> int:
        return _PTR_OFF + 4 * self.rng.randrange(0, 64)

    def _string_base(self, which: int) -> int:
        return _STRING_OFF + 64 * (which & 3)

    def _packed_base(self, which: int) -> int:
        return _PACKED_OFF + 16 * (which & 3)

    def _scratch(self) -> str:
        return "R{}".format(self.rng.randrange(0, 4))

    def _read_operand(self) -> str:
        """Draw a source operand with a Table 4-like mode distribution."""
        rng = self.rng
        roll = rng.random()
        if roll < 0.25:
            return self._scratch()
        if roll < 0.45:
            return "#{}".format(rng.randrange(0, 64))  # short literal
        if roll < 0.475:
            return "I^#{}".format(rng.randrange(64, 100000))  # immediate
        if roll < 0.67:
            return "{}(R6)".format(self._scalar_disp())  # displacement
        if roll < 0.75:
            return "(R7)"  # register deferred (points at the pointer table)
        if roll < 0.80:
            return "@{}(R7)".format(self._pointer_disp())  # disp deferred
        if roll < 0.83:
            return "@#{:#x}".format(DATA_ORIGIN + self._scalar_disp())  # absolute
        if roll < 0.95:
            return "{}(R6)[R11]".format(_SCALAR_OFF)  # indexed
        return "{}(R6)".format(self._scalar_disp())

    def _write_operand(self) -> str:
        rng = self.rng
        roll = rng.random()
        if roll < 0.55:
            return self._scratch()
        if roll < 0.85:
            return "{}(R6)".format(self._scalar_disp())
        if roll < 0.91:
            return "{}(R6)[R11]".format(_SCALAR_OFF + 128)
        return "(R7)"

    # -- slot emitters ------------------------------------------------------

    def emit_data(self) -> None:
        rng = self.rng
        asm = self.asm
        choice = rng.random()
        if choice < 0.40:
            width = rng.choice(["MOVL", "MOVL", "MOVL", "MOVB", "MOVW"])
            asm.instr(width, self._read_operand(), self._write_operand())
        elif choice < 0.56:
            op = rng.choice(["ADDL2", "SUBL2", "BISL2", "BICL2", "XORL2"])
            if rng.random() < 0.62:
                destination = self._scratch()
            else:
                destination = "{}(R6)".format(self._scalar_disp())  # memory modify
            asm.instr(op, self._read_operand(), destination)
        elif choice < 0.68:
            op = rng.choice(["ADDL3", "SUBL3"])
            asm.instr(op, self._read_operand(), self._read_operand(), self._write_operand())
        elif choice < 0.76:
            op = rng.choice(["CMPL", "TSTL", "BITL"])
            if op == "TSTL":
                asm.instr(op, self._read_operand())
            else:
                asm.instr(op, self._read_operand(), self._scratch())
        elif choice < 0.82:
            target = self._scratch() if rng.random() < 0.7 else "{}(R6)".format(self._scalar_disp())
            asm.instr(rng.choice(["INCL", "DECL"]), target)
        elif choice < 0.86:
            asm.instr("MOVZBL", self._read_operand_byte(), self._scratch())
        elif choice < 0.90:
            asm.instr("MOVAL", "{}(R6)".format(self._scalar_disp()), self._scratch())
        elif choice < 0.92:
            # autodecrement push / autoincrement pop (stack stays balanced)
            asm.instr("MOVL", self._read_operand(), "-(SP)")
            asm.instr("MOVL", "(SP)+", self._scratch())
        else:
            # an autoincrement walk over the scalar area
            asm.instr("MOVAL", "{}(R6)".format(_SCALAR_OFF), "R5")
            for _ in range(rng.randrange(2, 4)):
                asm.instr("MOVL", "(R5)+", self._scratch())

    def _read_operand_byte(self) -> str:
        if self.rng.random() < 0.5:
            return "#{}".format(self.rng.randrange(0, 64))
        return "{}(R6)".format(self._scalar_disp())

    def emit_branch(self) -> None:
        """One PC-changing instruction.

        Conditional branches test whatever condition codes the preceding
        data operations left — pseudo-random data gives the 50-60 %
        taken rates the paper reports for simple conditionals, while
        low-bit tests on scalar scratch registers land near 50 %.
        """
        rng = self.rng
        asm = self.asm
        skip = self._fresh("skip")
        roll = rng.random()
        if roll < 0.07:
            asm.instr("BRB", skip)  # unconditional (shares ucode with Bcc)
        elif roll < 0.16:
            asm.instr(rng.choice(["BLBS", "BLBC"]), self._scratch(), skip)
        else:
            asm.instr(
                rng.choice(["BNEQ", "BEQL", "BGTR", "BLEQ", "BGEQ", "BLSS", "BCC", "BCS"]),
                skip,
            )
        if rng.random() < 0.6:
            asm.instr("MOVL", self._read_operand(), self._scratch())
        asm.label(skip)

    def emit_loop(self) -> None:
        rng = self.rng
        asm = self.asm
        top = self._fresh("loop")
        low, high = self.profile.loop_iterations
        asm.instr("MOVL", "#{}".format(rng.randrange(low, high + 1)), "R10")
        asm.label(top)
        asm.instr("ADDL2", self._read_operand(), self._scratch())
        if rng.random() < 0.6:
            asm.instr("MOVL", self._read_operand(), self._write_operand())
        asm.instr("SOBGTR", "R10", top)

    def emit_call(self) -> None:
        if not self.procedures:
            return
        asm = self.asm
        asm.instr("PUSHL", self._read_operand())
        asm.instr("CALLS", "#1", self.rng.choice(self.procedures))

    def emit_bsb(self) -> None:
        if not self.subroutines:
            return
        self.asm.instr("BSBW", self.rng.choice(self.subroutines))

    def emit_case(self) -> None:
        asm = self.asm
        base = self._fresh("case_table")
        join = self._fresh("case_join")
        targets = [self._fresh("case_arm") for _ in range(4)]
        asm.instr("BICB3", "{}(R6)".format(_MASK_FC_OFF), "R4", "R3")
        asm.instr("CASEB", "R3", "#0", "#3")
        asm.label(base)
        for target in targets:
            asm.word_ref(target, base)
        for index, target in enumerate(targets):
            asm.label(target)
            asm.instr("MOVL", "#{}".format(index), "R2")
            if index != len(targets) - 1:
                asm.instr("BRB", join)
        asm.label(join)

    def emit_fieldop(self) -> None:
        rng = self.rng
        asm = self.asm
        roll = rng.random()
        pos = rng.randrange(0, 20)
        size = rng.randrange(1, 12)
        if roll < 0.45:
            asm.instr("EXTZV", "#{}".format(pos), "#{}".format(size), self._scratch(), "R2")
        elif roll < 0.65:
            asm.instr(
                "EXTV", "#{}".format(pos), "#{}".format(size),
                "{}(R6)".format(self._scalar_disp()), "R2",
            )
        elif roll < 0.85:
            asm.instr("INSV", "R2", "#{}".format(pos), "#{}".format(size), "R3")
        else:
            asm.instr("FFS", "#0", "#31", "R4", "R2")

    def emit_bitbranch(self) -> None:
        rng = self.rng
        asm = self.asm
        skip = self._fresh("bb")
        bit = rng.randrange(0, 8)
        if rng.random() < 0.75:
            asm.instr(rng.choice(["BBS", "BBC"]), "#{}".format(bit), self._scratch(), skip)
        else:
            asm.instr(
                rng.choice(["BBSS", "BBCC"]),
                "#{}".format(bit),
                "{}(R6)".format(self._scalar_disp()),
                skip,
            )
        asm.instr("MOVL", self._read_operand(), self._scratch())
        asm.label(skip)

    def emit_floatop(self) -> None:
        rng = self.rng
        asm = self.asm
        fcell = "{}(R8)".format(_FLOAT_OFF - _STRING_OFF + 4 * rng.randrange(0, 4))
        roll = rng.random()
        if roll < 0.3:
            asm.instr("MOVF", fcell, "R2")
            asm.instr("ADDF2", "I^#{}".format(rng.randrange(1, 9)), "R2")
        elif roll < 0.55:
            asm.instr("MULF3", "S^#0", fcell, "R2")  # x * 0.5 keeps values bounded
        elif roll < 0.75:
            asm.instr("ADDF3", fcell, "I^#{}".format(rng.randrange(1, 5)), "R2")
        elif roll < 0.9:
            asm.instr("CVTLF", "#{}".format(rng.randrange(1, 64)), "R2")
            asm.instr("CMPF", "R2", fcell)
        elif roll < 0.97:
            asm.instr("DIVF3", "I^#{}".format(rng.randrange(2, 7)), fcell, "R2")
        else:
            # Polynomial evaluation over the float cells (POLYF clobbers
            # R0-R3, all scratch).
            asm.instr(
                "POLYF", "S^#0", "#{}".format(rng.randrange(1, 4)),
                "{}(R8)".format(_FLOAT_OFF - _STRING_OFF),
            )

    def emit_muldiv(self) -> None:
        rng = self.rng
        asm = self.asm
        asm.instr("BICL3", "{}(R6)".format(_MASK_FF00_OFF), "R4", "R0")
        if rng.random() < 0.6:
            asm.instr("MULL3", "#{}".format(rng.randrange(3, 60)), "R0", "R1")
        else:
            asm.instr("DIVL3", "#{}".format(rng.randrange(3, 17)), "R0", "R1")

    def emit_charop(self) -> None:
        rng = self.rng
        asm = self.asm
        low, high = self.profile.string_length
        length = rng.randrange(low, high + 1)
        src = "{}(R8)".format(self._string_base(rng.randrange(4)))
        dst = "{}(R8)".format(self._string_base(rng.randrange(4)))
        roll = rng.random()
        if roll < 0.45:
            asm.instr("MOVC3", "#{}".format(length), src, dst)
        elif roll < 0.65:
            asm.instr("CMPC3", "#{}".format(length), src, dst)
        elif roll < 0.80:
            asm.instr("LOCC", "#{}".format(0x41 + rng.randrange(26)), "#{}".format(length), src)
        elif roll < 0.92:
            asm.instr(
                "MOVC5",
                "#{}".format(length // 2), src,
                "#0x20", "#{}".format(length), dst,
            )
        elif roll < 0.94:
            asm.instr("SKPC", "#0x20", "#{}".format(length), src)
        elif roll < 0.97:
            asm.instr("MATCHC", "#3", src, "#{}".format(length), dst)
        else:
            # CRC over a string through the nibble table in the data area.
            asm.instr("CRC", "{}(R8)".format(_CRC_TABLE_OFF - _STRING_OFF),
                      "#0", "#{}".format(length), src)

    def emit_decop(self) -> None:
        rng = self.rng
        asm = self.asm
        low, high = self.profile.decimal_digits
        digits = rng.randrange(low, high + 1)
        slot_a = "{}(R8)".format(self._packed_base(rng.randrange(2)) - _STRING_OFF)
        slot_b = "{}(R8)".format(self._packed_base(2 + rng.randrange(2)) - _STRING_OFF)
        # Every sequence initialises its operands with CVTLP first, so the
        # drawn digit count always matches the stored encoding.
        asm.instr("CVTLP", "#{}".format(rng.randrange(1, 9999)), "#{}".format(digits), slot_a)
        roll = rng.random()
        if roll < 0.35:
            asm.instr("CVTLP", "#{}".format(rng.randrange(1, 999)), "#{}".format(digits), slot_b)
            asm.instr("ADDP4", "#{}".format(digits), slot_a, "#{}".format(digits), slot_b)
        elif roll < 0.55:
            asm.instr("MOVP", "#{}".format(digits), slot_a, slot_b)
        elif roll < 0.75:
            asm.instr("CVTLP", "#{}".format(rng.randrange(1, 999)), "#{}".format(digits), slot_b)
            asm.instr("CMPP3", "#{}".format(digits), slot_a, slot_b)
        else:
            asm.instr("CVTPL", "#{}".format(digits), slot_a, "R2")

    def emit_queueop(self) -> None:
        asm = self.asm
        entry = "{}(R9)".format(16 + 16 * self.rng.randrange(0, 2))
        asm.instr("INSQUE", entry, "(R9)")
        asm.instr("REMQUE", entry, "R0")

    def emit_pushpop(self) -> None:
        # "about 8 registers are being pushed and popped"
        self.asm.instr("PUSHR", "#0xFF")
        self.asm.instr("POPR", "#0xFF")

    def emit_syscall(self) -> None:
        rng = self.rng
        if rng.random() < self.profile.qio_fraction:
            self.asm.instr("CHMK", "#1")  # blocking terminal QIO
        elif rng.random() < 0.6:
            self.asm.instr("CHMK", "#2")  # get-time
        else:
            self.asm.instr("CHMK", "#3")  # probe-and-copy

    _EMITTERS = {
        "data": emit_data,
        "branch": emit_branch,
        "loop": emit_loop,
        "call": emit_call,
        "bsb": emit_bsb,
        "case": emit_case,
        "fieldop": emit_fieldop,
        "bitbranch": emit_bitbranch,
        "floatop": emit_floatop,
        "muldiv": emit_muldiv,
        "charop": emit_charop,
        "decop": emit_decop,
        "queueop": emit_queueop,
        "pushpop": emit_pushpop,
        "syscall": emit_syscall,
    }

    # -- assembly of the whole program ---------------------------------------

    def _emit_procedures(self) -> None:
        rng = self.rng
        asm = self.asm
        low, high = self.profile.call_mask_bits
        for index in range(5):
            name = self._fresh("proc")
            self.procedures.append(name)
            asm.label(name)
            bits = rng.randrange(low, high + 1)
            mask = 0
            for register in range(2, 2 + bits):
                mask |= 1 << register
            asm.word(mask)
            for _ in range(rng.randrange(3, 7)):
                self.emit_data()
            asm.instr("MOVL", "4(AP)", "R0")
            asm.instr("ADDL2", "#1", "R0")
            asm.instr("RET")
        for index in range(4):
            name = self._fresh("sub")
            self.subroutines.append(name)
            asm.label(name)
            for _ in range(rng.randrange(2, 5)):
                self.emit_data()
            asm.instr("RSB")

    def _emit_prologue(self) -> None:
        asm = self.asm
        asm.instr("MOVAL", "@#{:#x}".format(DATA_ORIGIN), "R6")
        asm.instr("MOVAL", "@#{:#x}".format(DATA_ORIGIN + _PTR_OFF), "R7")
        asm.instr("MOVAL", "@#{:#x}".format(DATA_ORIGIN + _STRING_OFF), "R8")
        asm.instr("MOVAL", "@#{:#x}".format(DATA_ORIGIN + _QUEUE_OFF), "R9")
        asm.instr("CLRL", "R4")
        asm.instr("MOVL", "#2", "R11")
        # Make the private queue header self-referential.
        asm.instr("MOVL", "R9", "(R9)")
        asm.instr("MOVL", "R9", "4(R9)")

    def build(self) -> Tuple[bytes, Dict[str, int]]:
        profile = self.profile
        rng = self.rng
        categories = list(profile.mix)
        weights = [profile.mix[c] for c in categories]

        self._emit_prologue()
        self.asm.instr("BRW", "ring_start")
        self._emit_procedures()
        self.asm.label("ring_start")
        for block in range(profile.blocks):
            self.asm.label(self._fresh("block"))
            for _ in range(profile.slots_per_block):
                category = rng.choices(categories, weights=weights)[0]
                self.slot_counts[category] = self.slot_counts.get(category, 0) + 1
                self._EMITTERS[category](self)
        self.asm.instr("JMP", "ring_start")
        return self.asm.assemble(), self.slot_counts


def _build_data_image(profile: WorkloadProfile, rng: random.Random) -> bytes:
    """Initialised data for one process: scalars, pointers, strings,
    packed decimals, float cells, queue area."""
    size = profile.data_pages * 512
    image = bytearray(size)

    def put_long(offset: int, value: int) -> None:
        image[offset : offset + 4] = (value & 0xFFFFFFFF).to_bytes(4, "little")

    # Queue header self-reference (also re-done by the prologue).
    put_long(_QUEUE_OFF, DATA_ORIGIN + _QUEUE_OFF)
    put_long(_QUEUE_OFF + 4, DATA_ORIGIN + _QUEUE_OFF)
    # Scalars: bounded pseudo-random values.
    for offset in range(_SCALAR_OFF, _PTR_OFF, 4):
        put_long(offset, rng.randrange(0, 1 << 16))
    # Pointer table: absolute pointers into the scalar area.
    for index in range(64):
        target = DATA_ORIGIN + _SCALAR_OFF + 4 * rng.randrange(0, 256)
        put_long(_PTR_OFF + 4 * index, target)
    # Strings.
    for buffer_index in range(4):
        base = _STRING_OFF + 64 * buffer_index
        for offset in range(64):
            image[base + offset] = 0x20 + rng.randrange(95)
    # Packed decimal slots (15 digits max -> 8 bytes).
    for slot in range(4):
        digits = 15
        payload = packed_decimal_encode(rng.randrange(0, 10**9), digits)
        base = _PACKED_OFF + 16 * slot
        image[base : base + len(payload)] = payload
    # Mask cells used by CASE/muldiv operand bounding.
    image[_MASK_FC_OFF] = 0xFC
    put_long(_MASK_FF00_OFF, 0xFFFFFF00)
    # CRC-32 nibble table (polynomial 0xEDB88320).
    for index in range(16):
        crc = index
        for _ in range(4):
            crc = (crc >> 1) ^ (0xEDB88320 if crc & 1 else 0)
        put_long(_CRC_TABLE_OFF + 4 * index, crc)
    # F_floating cells.
    from repro.isa.datatypes import f_floating_encode

    for cell in range(4):
        put_long(_FLOAT_OFF + 4 * cell, f_floating_encode(float(rng.randrange(1, 50))))
    # Far-scatter area: more scalars.
    for offset in range(_EXTENT_OFF, size - 4, 4):
        put_long(offset, rng.randrange(0, 1 << 12))
    return bytes(image)


#: (id(profile), variant) -> (profile, program).  Generation is fully
#: deterministic in (profile, variant), and a GeneratedProgram is
#: immutable once built (the machine copies its bytes into memory), so
#: experiments that construct many machines over the same workloads skip
#: re-running the assembler.  The profile reference is kept in the value
#: so its id() cannot be recycled while the entry is live.
_PROGRAM_CACHE: Dict = {}


def generate_program(profile: WorkloadProfile, variant: int = 0) -> GeneratedProgram:
    """Generate one process image for ``profile``.

    ``variant`` differentiates the processes of a multi-user workload
    (different code layout and data, same statistical mix).
    """
    key = (id(profile), variant)
    cached = _PROGRAM_CACHE.get(key)
    if cached is not None:
        return cached[1]
    program = _generate_program(profile, variant)
    _PROGRAM_CACHE[key] = (profile, program)
    return program


def _generate_program(profile: WorkloadProfile, variant: int) -> GeneratedProgram:
    emitter = _Emitter(profile, variant)
    code, slot_counts = emitter.build()
    data_rng = random.Random((profile.seed << 16) ^ (variant * 7919))
    data = _build_data_image(profile, data_rng)
    return GeneratedProgram(
        name="{}#{}".format(profile.name, variant),
        code=code,
        code_origin=CODE_ORIGIN,
        data=data,
        data_origin=DATA_ORIGIN,
        slot_counts=slot_counts,
    )

"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list-workloads``
    The five workload profiles and their populations.
``diagram``
    Render Figure 1 (the machine's block diagram).
``run WORKLOAD``
    Measure one workload and print the paper's tables.
``composite``
    The headline experiment: measure all five workloads and print every
    table from the summed histograms.  ``--jobs N`` fans the five runs
    out over a process pool with bit-identical results; each run's
    progress renders live on stderr.  ``--shards K`` splits every
    workload's measurement into K resumable shards banked in the
    content-addressed run cache, so re-runs replay finished shards
    instead of re-simulating (``--no-cache`` opts out).
``snapshot save|info``
    Freeze one workload's machine mid-measurement into a versioned,
    digest-checked snapshot file; ``info`` reads the header (never the
    pickle) back out.
``cache info|ls|clear``
    Inspect or empty the content-addressed run cache; ``info`` includes
    the lifetime hit/miss totals aggregated across every process that
    ever touched the cache (the persistent stats ledger).
``serve`` / ``submit`` / ``poll``
    The experiment service: ``serve`` runs the asyncio job queue behind
    the HTTP/JSON API, ``submit`` posts a sweep (``--wait`` polls it to
    completion, ``--check`` re-validates the fetched results), and
    ``poll`` inspects jobs or the scheduler's dedupe statistics.
    Concurrent clients submitting overlapping sweeps execute each
    unique spec at most once.
``sweep WORKLOAD PARAM VALUES...``
    Design-space sweep of one machine parameter (``cache_kb`` /
    ``tb_half`` / ``wb_drain``) against the baseline, optionally
    parallel with ``--jobs``.
``opcodes WORKLOAD``
    The Clark & Levy-style per-opcode frequency report.
``listing``
    Dump the control-store layout (the analyst's address map).
``trace WORKLOAD``
    Run one workload with cycle-level tracing attached and export the
    capture as Chrome trace-event JSON (loadable in Perfetto or
    ``about://tracing``), the compact binary dump, or the indexed
    on-disk store (``--format store``) that ``repro query`` reads.
``query EXPRESSION``
    Ask questions of a trace: ``repro query "stall cycles where
    track=MEM and routine=SPEC_FETCH"`` against a stored trace
    (``--trace``) or a fresh in-process traced run (``--workload``).
    ``--jit`` captures compile-lifecycle events (record/superblock
    formation, tier-ups, deopts, fallbacks) with the compiled hot path
    still enabled.
``check [WORKLOAD]``
    Evaluate every counter identity (cycle classification, instruction
    counts, miss splits, and with ``--trace`` the trace-vs-counter
    identities) and localize any failure to its subsystem; exit 1 on a
    broken invariant.
``stats [WORKLOAD]``
    Run one workload (or the composite) and report the typed metrics
    surface: simulated counters, derived gauges, wall-clock
    self-profiling, replay-compiler diagnostics, and per-run
    provenance manifests.
``bench``
    Run the warm/cold composite benchmark in-process and print the
    instructions/second delta against the committed
    ``BENCH_engine.json``.

Diagnostics go to stderr through :mod:`repro.obs.log`; the threshold is
``-v``/``--verbose`` (debug), ``-q``/``--quiet`` (warnings only), or the
``REPRO_LOG`` environment variable.  Command output (the tables) stays
on stdout.
"""

from __future__ import annotations

import argparse

from repro.core import tables
from repro.core.reduction import COLUMNS, ROWS
from repro.core.report import matrix_to_text
from repro.obs.log import DEBUG, WARN, emit, get_logger, set_level


def _print_all_tables(result) -> None:
    emit(
        "\n{}: {} instructions, CPI {:.3f}\n".format(
            result.name, result.instructions, result.cpi
        )
    )

    table1 = tables.table1(result)
    emit("Table 1: opcode group frequency (percent)")
    for group, percent in sorted(table1.items(), key=lambda kv: -kv[1]):
        emit("  {:<12} {:6.2f}".format(group, percent))

    table2 = tables.table2(result)
    emit("\nTable 2: PC-changing instructions (% of instr / % taken)")
    for row, cells in table2.items():
        if cells["percent_of_instructions"] > 0:
            emit(
                "  {:<14} {:6.1f} {:6.1f}".format(
                    row, cells["percent_of_instructions"], cells["percent_taken"]
                )
            )

    table3 = tables.table3(result)
    emit(
        "\nTable 3: {:.3f} first + {:.3f} other specifiers, "
        "{:.3f} branch displacements per instruction".format(
            table3["spec1"], table3["spec26"], table3["branch_displacements"]
        )
    )

    table4 = tables.table4(result)
    emit("\nTable 4: specifier modes (percent of all specifiers)")
    for row, cells in table4.items():
        emit("  {:<22} {:6.2f}".format(row, cells["total"]))

    table5 = tables.table5(result)
    emit("\nTable 5: reads {:.3f} / writes {:.3f} per instruction".format(
        table5["total"]["reads"], table5["total"]["writes"]))

    table6 = tables.table6(result)
    emit("Table 6: average instruction {:.2f} bytes".format(table6["total_bytes"]))

    table7 = tables.table7(result)
    emit("\nTable 7: headways (instructions between events)")
    for event, headway in table7.items():
        emit("  {:<28} {:8.0f}".format(event, headway))

    emit()
    table8 = tables.table8(result)
    emit(
        matrix_to_text(
            {row: table8[row] for row in ROWS + ["total"]},
            COLUMNS + ["total"],
            "Table 8: cycles per average instruction",
        )
    )

    table9 = tables.table9(result)
    emit("\nTable 9: execute cycles within each group")
    for row, cells in table9.items():
        emit("  {:<12} {:8.2f}".format(row, cells["total"]))

    sec41 = tables.sec41_istream(result)
    sec42 = tables.sec42_cache_tb(result)
    emit(
        "\nSec 4.1: {:.2f} IB refs/instr at {:.2f} bytes/ref".format(
            sec41["ib_references_per_instruction"], sec41["bytes_per_reference"]
        )
    )
    emit(
        "Sec 4.2: {:.3f} cache read misses/instr; {:.4f} TB misses/instr "
        "at {:.1f} cycles each".format(
            sec42["cache_read_misses_per_instruction"],
            sec42["tb_misses_per_instruction"],
            sec42["cycles_per_tb_miss"],
        )
    )


def _progress_printer(log):
    """A run_specs progress callback rendering per-workload status."""

    def notify(event) -> None:
        position = "[{}/{}]".format(event.index + 1, event.total)
        if event.kind == "start":
            log.info("{} {} started".format(position, event.name))
        elif event.kind == "done":
            log.info(
                "{} {} done".format(position, event.name),
                seconds=event.wall_seconds,
            )
        elif event.kind == "retry":
            log.warn(
                "{} {} retrying".format(position, event.name), error=event.error
            )
        else:
            log.error(
                "{} {} failed".format(position, event.name), error=event.error
            )

    return notify


def cmd_list_workloads(_args) -> int:
    from repro.workloads import COMPOSITE_WORKLOAD_NAMES, PROFILES

    for name in COMPOSITE_WORKLOAD_NAMES:
        profile = PROFILES[name]
        emit("{:<20} {:>3} users  {}".format(name, profile.users, profile.description))
    return 0


def cmd_diagram(_args) -> int:
    from repro.core.monitor import UPCMonitor
    from repro.cpu import VAX780

    emit(VAX780(monitor=UPCMonitor.build()).block_diagram())
    return 0


def cmd_run(args) -> int:
    from repro.core.experiment import run_workload

    result = run_workload(
        args.workload,
        instructions=args.instructions,
        warmup_instructions=args.warmup,
    )
    _print_all_tables(result)
    return 0


def cmd_composite(args) -> int:
    from repro.core.experiment import run_composite_experiment
    from repro.core.resilience import INTERRUPT_EXIT_CODE, ResiliencePolicy
    from repro.workloads import COMPOSITE_WORKLOAD_NAMES

    log = get_logger("repro.composite")
    cache = None
    if args.shards > 1 and not args.no_cache:
        from repro.core.runcache import RunCache

        cache = RunCache.default(args.cache_dir)
    policy = ResiliencePolicy.from_options(
        retries=args.retries,
        spec_timeout=args.spec_timeout,
        on_error=args.on_error,
        interrupt_report_path=args.interrupt_report,
    )
    log.info(
        "measuring {} workloads".format(len(COMPOSITE_WORKLOAD_NAMES)),
        jobs=args.jobs,
        shards=args.shards,
    )
    try:
        outcome = run_composite_experiment(
            instructions_per_workload=args.instructions,
            warmup_instructions=args.warmup,
            jobs=args.jobs,
            progress=_progress_printer(log),
            shards=args.shards,
            cache=cache,
            policy=policy,
        )
    except KeyboardInterrupt as interrupt:
        report = getattr(interrupt, "report", None)
        if report is not None:
            log.error("composite interrupted: {}".format(report.summary()))
            if policy.interrupt_report_path:
                log.error(
                    "partial report saved", path=policy.interrupt_report_path
                )
        else:
            log.error("composite interrupted")
        return INTERRUPT_EXIT_CODE
    report = None
    if args.on_error == "collect":
        result, report = outcome
    else:
        result = outcome
    if report is not None and not report.ok:
        for failure in report.failures:
            log.error(
                "workload failed", name=failure.name, kind=failure.kind,
                attempts=failure.attempts, error=failure.error,
            )
        log.error("composite incomplete: {}".format(report.summary()))
    if result is not None:
        _print_all_tables(result)
    if cache is not None:
        stats = cache.stats()
        log.info(
            "run cache {}".format(cache.root),
            hits=stats["hits"],
            misses=stats["misses"],
            puts=stats["puts"],
            quarantined=cache.quarantined_objects(),
        )
    return 0 if report is None or report.ok else 1


def cmd_snapshot(args) -> int:
    import json

    from repro.core.snapshot import MachineSnapshot

    log = get_logger("repro.snapshot")
    if args.action == "info":
        header = MachineSnapshot.read_header(args.path)
        emit(json.dumps(header, indent=2, sort_keys=True))
        return 0

    # save: build + warm up + measure into the snapshot point, then freeze.
    from repro.core.experiment import prepare_workload
    from repro.core.snapshot import capture

    log.info(
        "building snapshot",
        workload=args.workload,
        instructions=args.instructions,
        warmup=args.warmup,
    )
    kernel, _ = prepare_workload(args.workload)
    kernel.run(max_instructions=args.warmup)
    kernel.start_measurement()
    kernel.run(max_instructions=args.instructions)
    snapshot = capture(kernel, label=args.workload)
    path = args.output or "{}_{}.snap".format(args.workload, args.instructions)
    snapshot.save(path)
    emit(
        "wrote {} ({} bytes compressed, digest {})".format(
            path, snapshot.compressed_bytes, snapshot.digest[:16]
        )
    )
    return 0


def cmd_cache(args) -> int:
    from repro.core.runcache import RunCache

    cache = RunCache.default(args.cache_dir)
    if args.action == "clear":
        removed = cache.clear()
        emit("removed {} cached objects from {}".format(removed, cache.root))
        return 0
    entries = list(cache.entries())
    if args.action == "ls":
        for entry in entries:
            meta = entry.meta
            emit(
                "{}  {:>10}  {:<8} {}".format(
                    entry.key[:16],
                    entry.size_bytes,
                    meta.get("kind", "?"),
                    "{} @{}".format(meta.get("spec", "?"), meta.get("instruction", meta.get("start", "?"))),
                )
            )
        return 0
    by_kind = {}
    for entry in entries:
        kind = entry.meta.get("kind", "?")
        count, size = by_kind.get(kind, (0, 0))
        by_kind[kind] = (count + 1, size + entry.size_bytes)
    emit("cache root: {}".format(cache.root))
    emit("objects:    {} ({} bytes)".format(len(entries), sum(e.size_bytes for e in entries)))
    for kind, (count, size) in sorted(by_kind.items()):
        emit("  {:<10} {:>5} objects, {:>10} bytes".format(kind, count, size))
    quarantined = cache.quarantined_objects()
    if quarantined:
        emit("quarantined: {} corrupt objects (objects/quarantine/)".format(quarantined))
    # Lifetime traffic from the persistent ledger: every process that
    # touched this cache — CLI runs, service jobs, pool workers —
    # flushed its counters here.  The in-process stats of this (fresh)
    # CLI invocation would read all zeros and silently undercount.
    totals = cache.persistent_totals()
    emit(
        "lifetime:   {} hits / {} misses / {} puts / {} quarantined "
        "({} flushes)".format(
            totals["hits"], totals["misses"], totals["puts"],
            totals["quarantined"], totals["flushes"],
        )
    )
    return 0


def cmd_serve(args) -> int:
    from repro.core.resilience import ResiliencePolicy
    from repro.service.server import ExperimentService

    cache = None
    if not args.no_cache:
        from repro.core.runcache import RunCache

        cache = RunCache.default(args.cache_dir)
    policy = ResiliencePolicy.from_options(
        retries=args.retries, spec_timeout=args.spec_timeout
    )
    service = ExperimentService(
        host=args.host,
        port=args.port,
        jobs=args.jobs,
        shards=args.shards,
        cache=cache,
        policy=policy,
        concurrency=args.concurrency,
        result_index_size=args.result_index,
    )

    def announce(bound):
        # On stdout so scripts (and the CI smoke leg) can scrape the
        # port even when --port 0 asked the OS to pick one.
        emit("service listening on http://{}:{}".format(bound.host, bound.port))
        import sys

        sys.stdout.flush()

    service.run(announce=announce)
    return 0


def _submit_specs(args):
    """The sweep a ``repro submit`` invocation describes."""
    from repro.core.engine import RunSpec
    from repro.workloads import COMPOSITE_WORKLOAD_NAMES

    names = args.workloads or list(COMPOSITE_WORKLOAD_NAMES)
    return [
        RunSpec(
            workload=name,
            instructions=args.instructions,
            warmup_instructions=args.warmup,
        )
        for name in names
    ]


def cmd_submit(args) -> int:
    import json

    from repro.service.client import ClientError, ServiceClient

    log = get_logger("repro.submit")
    client = ServiceClient(args.url)
    specs = _submit_specs(args)
    try:
        accepted = client.submit_sweep(specs, on_error=args.on_error)
    except ClientError as error:
        log.error("submission refused", status=error.status)
        log.error(str(error))
        return 1
    job_id = accepted["job"]
    log.info("job accepted", job=job_id, specs=len(specs))
    if not args.wait:
        emit(json.dumps(accepted, indent=2))
        return 0
    record = client.wait(job_id, timeout=args.timeout)
    if args.json:
        emit(json.dumps(record, indent=2, sort_keys=True))
    if record["state"] != "done":
        log.error("job failed", job=job_id)
        error = record.get("error", {})
        if error.get("worker_traceback"):
            log.error(error["worker_traceback"].rstrip())
        elif error.get("message"):
            log.error(error["message"])
        return 1
    failed = 0
    for summary in record["runs"]:
        provenance = "executed"
        if summary.get("attached_to"):
            provenance = "attached"
        elif summary.get("resumed_from"):
            provenance = "from-cache"
        line = "{:<24} CPI {:6.3f}  {:>8} instr  {:7.2f}s  {}".format(
            summary["name"], summary["cpi"], summary["instructions"],
            summary["wall_seconds"], provenance,
        )
        if args.check:
            from repro.obs.invariants import check_result

            result = client.result(summary["digest"]).result
            outcomes = check_result(result)
            broken = [o for o in outcomes if not o.ok]
            failed += len(broken)
            line += "  [{} identities {}]".format(
                len(outcomes), "ok" if not broken else "BROKEN"
            )
            if not args.json:
                emit(line)
            for outcome in broken:
                log.error(
                    "identity broken", name=outcome.name, subsystem=outcome.subsystem
                )
        elif not args.json:
            emit(line)
    report = record.get("report")
    if report is not None and report.get("failures"):
        for failure in report["failures"]:
            log.error(
                "spec failed", name=failure["name"], kind=failure["kind"],
                error=failure["error"],
            )
        return 1
    return 0 if not failed else 1


def cmd_poll(args) -> int:
    import json

    from repro.service.client import ClientError, ServiceClient

    log = get_logger("repro.poll")
    client = ServiceClient(args.url)
    try:
        if args.stats:
            emit(json.dumps(client.stats(), indent=2, sort_keys=True))
            return 0
        if args.job is None:
            emit(json.dumps({"jobs": client.jobs()}, indent=2, sort_keys=True))
            return 0
        record = (
            client.wait(args.job, timeout=args.timeout)
            if args.wait
            else client.job(args.job)
        )
    except ClientError as error:
        log.error(str(error))
        return 1
    emit(json.dumps(record, indent=2, sort_keys=True))
    return 0 if record["state"] != "failed" else 1


#: ``sweep`` parameter name -> MachineConfig field constructor
_SWEEP_PARAMS = {
    "cache_kb": lambda v: {"cache_size_bytes": int(v) * 1024},
    "tb_half": lambda v: {"tb_half_entries": int(v)},
    "wb_drain": lambda v: {"wb_drain_cycles": int(v)},
}


def cmd_sweep(args) -> int:
    from repro.core.engine import MachineConfig, RunSpec, run_specs

    log = get_logger("repro.sweep")
    make_fields = _SWEEP_PARAMS[args.param]
    configs = [None] + [MachineConfig(**make_fields(value)) for value in args.values]
    specs = [
        RunSpec(
            workload=args.workload,
            instructions=args.instructions,
            warmup_instructions=args.warmup,
            config=config,
        )
        for config in configs  # baseline first, then the sweep points
    ]
    log.info(
        "sweeping {} over {}={}".format(
            args.workload, args.param, ",".join(str(v) for v in args.values)
        ),
        jobs=args.jobs,
    )
    runs = run_specs(specs, jobs=args.jobs, progress=_progress_printer(log))
    header = "{:<40} {:>7} {:>8} {:>8} {:>9} {:>9}".format(
        "configuration", "CPI", "rstall/i", "wstall/i", "ibstall/i", "memmgmt/i"
    )
    emit(header)
    emit("-" * len(header))
    for run in runs:
        result = run.result
        columns = result.reduction.column_totals()
        instructions = max(1, result.instructions)
        emit(
            "{:<40} {:7.3f} {:8.3f} {:8.3f} {:9.3f} {:9.3f}".format(
                result.name,
                result.cpi,
                columns["rstall"] / instructions,
                columns["wstall"] / instructions,
                columns["ibstall"] / instructions,
                result.reduction.row_totals()["memmgmt"] / instructions,
            )
        )
    return 0


def cmd_opcodes(args) -> int:
    from repro.core.experiment import run_workload
    from repro.core.opcode_report import coverage_count, frequency_cost_contrast

    result = run_workload(
        args.workload, instructions=args.instructions, warmup_instructions=args.warmup
    )
    emit(frequency_cost_contrast(result, top=args.top))
    emit()
    emit(
        "{} distinct opcodes cover 90% of dynamic execution".format(
            coverage_count(result, 90.0)
        )
    )
    return 0


def cmd_listing(_args) -> int:
    from repro.ucode.routines import build_layout

    emit(build_layout().store.listing())
    return 0


def cmd_trace(args) -> int:
    import json

    from repro.core.experiment import run_workload
    from repro.obs.trace import Tracer, validate_chrome, write_binary

    log = get_logger("repro.trace")
    tracer = Tracer(capacity=args.capacity)
    log.info(
        "tracing workload",
        workload=args.workload,
        instructions=args.instructions,
        capacity=args.capacity,
    )
    result = run_workload(
        args.workload,
        instructions=args.instructions,
        warmup_instructions=args.warmup,
        tracer=tracer,
    )
    stem = args.output or "trace_{}".format(args.workload)
    if stem.endswith(".json"):
        stem = stem[: -len(".json")]
    written = []
    if args.format in ("json", "both"):
        payload = tracer.to_chrome()
        for problem in validate_chrome(payload):
            log.warn("trace validation", problem=problem)
        path = stem + ".json"
        with open(path, "w") as handle:
            json.dump(payload, handle)
        written.append(path)
    if args.format in ("binary", "both"):
        path = stem + ".bin"
        write_binary(tracer, path)
        written.append(path)
    if args.format == "store":
        from repro.obs.query import write_store

        path = stem + ".vaxtrace"
        footer = write_store(
            tracer,
            path,
            meta={
                "workload": args.workload,
                "instructions": args.instructions,
                "warmup_instructions": args.warmup,
            },
        )
        written.append(path)
        log.info(
            "store written",
            segments=len(footer["segments"]),
            records=footer["record_count"],
        )
    emit(
        "{}: {} instructions, CPI {:.3f}".format(
            result.name, result.instructions, result.cpi
        )
    )
    emit(
        "captured {} events ({} emitted, {} dropped by the ring)".format(
            len(tracer), tracer.emitted, tracer.dropped
        )
    )
    for path in written:
        emit("wrote {}".format(path))
    return 0


def cmd_query(args) -> int:
    import json

    from repro.obs.query import QueryError, open_store, parse_query

    log = get_logger("repro.query")
    try:
        plan = parse_query(args.expression)
    except QueryError as error:
        log.error(str(error))
        return 2

    if args.trace:
        source = open_store(args.trace)
        log.info(
            "querying store",
            path=args.trace,
            segments=len(getattr(source, "footer", {}).get("segments", ()))
            or "in-memory",
        )
    elif args.workload:
        from repro.core.experiment import run_workload

        if args.jit:
            from repro.obs.channel import EventChannel

            channel = EventChannel(capacity=args.capacity)
            run_workload(
                args.workload,
                instructions=args.instructions,
                warmup_instructions=args.warmup,
                compile_events=channel,
            )
            source = channel.to_trace_events()
            log.info(
                "captured compile-lifecycle events",
                emitted=channel.emitted,
                dropped=channel.dropped,
            )
        else:
            from repro.obs.trace import Tracer

            tracer = Tracer(capacity=args.capacity)
            run_workload(
                args.workload,
                instructions=args.instructions,
                warmup_instructions=args.warmup,
                tracer=tracer,
            )
            source = tracer
            if tracer.dropped:
                log.warn(
                    "ring dropped events; aggregates cover a truncated window",
                    dropped=tracer.dropped,
                )
    else:
        log.error("need --trace PATH or --workload NAME to query")
        return 2

    try:
        answer = plan.run(source)
    except QueryError as error:
        log.error(str(error))
        return 2
    scanned = getattr(source, "segments_scanned", None)
    if scanned is not None:
        log.info("segments scanned", scanned=scanned)
    if args.json:
        emit(json.dumps({"query": args.expression, "result": answer}, indent=2))
        return 0
    emit("query: {}".format(args.expression))
    stat_order = ("count", "sum", "min", "max", "mean", "p50", "p90", "p99")
    if isinstance(answer, dict) and set(answer) <= set(stat_order):
        for key in stat_order:
            if key in answer:
                emit("  {:<5} {:>14}".format(key, _format_value(answer[key])))
    elif isinstance(answer, dict):
        width = max((len(str(key)) for key in answer), default=0)
        for key, value in sorted(
            answer.items(), key=lambda kv: (-_numeric(kv[1]), str(kv[0]))
        ):
            if isinstance(value, dict):  # histogram() output
                emit("  {:<{}} {}".format(key, width, _format_cells(value)))
            else:
                emit("  {:<{}} {:>14}".format(str(key), width, _format_value(value)))
    else:
        emit("  {}".format(_format_value(answer)))
    return 0


def _numeric(value) -> float:
    if isinstance(value, dict):
        return float(value.get("sum", value.get("count", 0)))
    return float(value)


def _format_value(value) -> str:
    if isinstance(value, float) and not value.is_integer():
        return "{:.4f}".format(value)
    return str(int(value)) if isinstance(value, float) else str(value)


def _format_cells(cells: dict) -> str:
    return " ".join(
        "{}={}".format(key, _format_value(cells[key]))
        for key in ("count", "sum", "mean", "p50", "p90", "p99")
        if key in cells
    )


def cmd_check(args) -> int:
    import json

    from repro.obs.invariants import run_checked_workload, schema_envelope
    from repro.workloads import COMPOSITE_WORKLOAD_NAMES

    log = get_logger("repro.check")
    names = [args.workload] if args.workload else list(COMPOSITE_WORKLOAD_NAMES)
    reports = []
    for name in names:
        log.info(
            "checking workload",
            workload=name,
            instructions=args.instructions,
            trace=args.trace,
        )
        report, _result = run_checked_workload(
            name,
            instructions=args.instructions,
            warmup_instructions=args.warmup,
            trace=args.trace,
            tracer_capacity=args.capacity,
        )
        reports.append(report)

    if args.json:
        envelope = schema_envelope("check", [report.payload() for report in reports])
        emit(json.dumps(envelope, indent=2))
        return 0 if envelope["ok"] else 1

    failed = 0
    for report in reports:
        emit("{}:".format(report.name))
        for outcome in report.outcomes:
            marker = "ok  " if outcome.ok else "FAIL"
            line = "  {} {:<32} {:>14} == {:<14}".format(
                marker,
                outcome.name,
                _format_value(outcome.lhs),
                _format_value(outcome.rhs),
            )
            emit(line.rstrip())
            if not outcome.ok:
                failed += 1
                emit("       subsystem: {}".format(outcome.subsystem))
                if outcome.detail:
                    emit("       {}".format(outcome.detail))
        for identity, reason in sorted(report.skipped.items()):
            emit("  skip {:<32} {}".format(identity, reason))
    total = sum(len(report.outcomes) for report in reports)
    skipped = sum(len(report.skipped) for report in reports)
    summary = "{} identities checked across {} workload(s): {}".format(
        total, len(reports), "all hold" if not failed else "{} FAILED".format(failed)
    )
    if skipped:
        summary += " ({} skipped)".format(skipped)
    emit("\n" + summary)
    return 0 if not failed else 1


def cmd_validate(args) -> int:
    """Run the directed validation probes: programs whose event counts
    are known by construction, diffed against the machine in every
    compile mode.  Exit 1 when the machine refutes the model."""
    import json

    from repro.obs.invariants import schema_envelope
    from repro.validate import (
        ALL_MODES,
        RefutationRunner,
        build_probes,
        canonical_names,
    )

    log = get_logger("repro.validate")
    probes = build_probes()

    if args.list:
        for probe in probes.values():
            marker = "*" if probe.canonical else " "
            emit(
                "{} {:<16} [{:<9}] {}".format(
                    marker, probe.name, probe.covers, probe.title
                )
            )
        emit("\n* = canonical (the CI validation leg runs these)")
        return 0

    if args.probe:
        if args.probe not in probes:
            emit(
                "unknown probe {!r}; `repro validate --list` names them".format(
                    args.probe
                )
            )
            return 2
        names = [args.probe]
    elif args.canonical:
        names = canonical_names()
    else:
        names = list(probes)

    modes = ALL_MODES if args.mode == "all" else (args.mode,)
    runner = RefutationRunner(modes=modes, trace=not args.no_trace)
    reports = []
    for name in names:
        log.info("validating", probe=name, modes=",".join(modes))
        reports.append(runner.run_probe(probes[name]))

    if args.json:
        envelope = schema_envelope(
            "validate", [report.to_dict() for report in reports]
        )
        emit(json.dumps(envelope, indent=2))
        return 0 if envelope["ok"] else 1

    failed = 0
    for report in reports:
        marker = "ok  " if report.ok else "FAIL"
        emit(
            "{} {:<16} {:>3} checks [{}]".format(
                marker,
                report.name,
                len(report.outcomes),
                report.covers,
            )
        )
        for outcome in report.failures:
            failed += 1
            emit(
                "     FAIL {:<32} expected {} actual {}".format(
                    outcome.name, outcome.expected, _format_value(outcome.actual)
                )
            )
            emit("          blame: {}".format(outcome.blame))
            if outcome.detail:
                emit("          {}".format(outcome.detail))
        for check, reason in sorted(report.skipped.items()):
            emit("     skip {:<32} {}".format(check, reason))
    total = sum(len(report.outcomes) for report in reports)
    summary = "{} checks across {} probe(s), modes={}: {}".format(
        total,
        len(reports),
        ",".join(modes),
        "model holds" if not failed else "{} REFUTED".format(failed),
    )
    emit("\n" + summary)
    return 0 if not failed else 1


def cmd_bench(args) -> int:
    """Run the warm/cold engine benchmark in-process and print the
    instructions/second delta against the committed BENCH_engine.json."""
    import json
    import os
    import time

    from repro.core.engine import RunSpec, run_specs
    from repro.core.experiment import composite
    from repro.obs.metrics import MetricsRegistry
    from repro.workloads import COMPOSITE_WORKLOAD_NAMES

    log = get_logger("repro.bench")

    committed = None
    if os.path.exists(args.baseline):
        with open(args.baseline) as handle:
            committed = json.load(handle)
    else:
        log.warn("no committed baseline found", path=args.baseline)

    instructions = args.instructions
    warmup = args.warmup
    if committed is not None:
        config = committed.get("config", {})
        if args.instructions is None:
            instructions = config.get("instructions_per_workload")
        if args.warmup is None:
            warmup = config.get("warmup_instructions")
    instructions = instructions or 4_000
    warmup = warmup or 1_000

    def measure():
        specs = [
            RunSpec(workload=name, instructions=instructions, warmup_instructions=warmup)
            for name in COMPOSITE_WORKLOAD_NAMES
        ]
        started = time.perf_counter()
        runs = run_specs(specs, jobs=1)
        wall = time.perf_counter() - started
        return composite([run.result for run in runs]), wall, runs

    log.info(
        "benchmarking composite",
        instructions=instructions,
        warmup=warmup,
        trials=args.trials,
    )
    # The first composite in a fresh interpreter is the cold figure
    # (``python -m repro bench`` is exactly that); the best of the
    # remaining trials is the warm figure.
    cold_result, cold_wall, _ = measure()
    measured = cold_result.instructions
    warm_wall, warm_runs = None, None
    for _ in range(max(1, args.trials)):
        _, wall, runs = measure()
        if warm_wall is None or wall < warm_wall:
            warm_wall, warm_runs = wall, runs

    def show(label, ips, committed_ips):
        if committed_ips:
            delta = (ips - committed_ips) / committed_ips * 100.0
            emit(
                "{:<6} {:>9.0f} instr/s   committed {:>9.0f}   {:+6.1f}%".format(
                    label, ips, committed_ips, delta
                )
            )
        else:
            emit("{:<6} {:>9.0f} instr/s   (no committed baseline)".format(label, ips))

    sequential = (committed or {}).get("sequential", {})
    emit(
        "composite: {} workloads x {} instructions (warmup {})".format(
            len(COMPOSITE_WORKLOAD_NAMES), instructions, warmup
        )
    )
    show("cold", measured / cold_wall, sequential.get("cold_instructions_per_second"))
    show("warm", measured / warm_wall, sequential.get("warm_instructions_per_second"))

    registry = MetricsRegistry()
    for run in warm_runs:
        if run.metrics:
            registry.merge_snapshot(run.metrics)
    from repro.core.compile import stats_from_snapshot

    compile_stats = stats_from_snapshot(registry.snapshot())
    if compile_stats is not None and compile_stats.get("active"):
        emit(
            "compiled hot path: {:.1%} of instructions replayed "
            "({} JIT hits, {} misses, {} records compiled)".format(
                compile_stats.get("fast_instruction_fraction", 0.0),
                compile_stats.get("jit_hits", 0),
                compile_stats.get("jit_misses", 0),
                compile_stats.get("records_compiled", 0),
            )
        )
        if compile_stats.get("superblock_runs"):
            emit(
                "superblocks: {} formed, {} dispatches retiring {} instructions "
                "(mean {:.2f}/dispatch), {} deopts".format(
                    compile_stats.get("superblocks_formed", 0),
                    compile_stats.get("superblock_runs", 0),
                    compile_stats.get("superblock_instructions", 0),
                    compile_stats.get("superblock_mean_length", 0.0),
                    compile_stats.get("superblock_deopts", 0),
                )
            )
    return 0


def cmd_stats(args) -> int:
    import json

    from repro.core.engine import RunSpec, run_specs
    from repro.core.experiment import composite
    from repro.obs.metrics import registry_from_result
    from repro.workloads import COMPOSITE_WORKLOAD_NAMES

    log = get_logger("repro.stats")
    names = [args.workload] if args.workload else list(COMPOSITE_WORKLOAD_NAMES)
    specs = [
        RunSpec(
            workload=name,
            instructions=args.instructions,
            warmup_instructions=args.warmup,
        )
        for name in names
    ]
    runs = run_specs(specs, jobs=args.jobs, progress=_progress_printer(log))
    result = (
        runs[0].result if len(runs) == 1 else composite([run.result for run in runs])
    )
    registry = registry_from_result(result)
    for run in runs:
        if run.metrics:
            registry.merge_snapshot(run.metrics)
    snapshot = registry.snapshot()
    manifests = [run.manifest.to_dict() for run in runs if run.manifest is not None]
    if args.json:
        emit(
            json.dumps(
                {"name": result.name, "metrics": snapshot, "manifests": manifests},
                indent=2,
            )
        )
        return 0
    emit(
        "{}: {} instructions, CPI {:.3f}\n".format(
            result.name, result.instructions, result.cpi
        )
    )
    emit("counters:")
    for name, value in snapshot["counters"].items():
        emit("  {:<44} {:>14}".format(name, value))
    emit("\ngauges:")
    for name, value in snapshot["gauges"].items():
        emit("  {:<44} {:>14.4f}".format(name, value))
    if snapshot["histograms"]:
        emit("\nself-profiling (count / mean / p50 / p90 / p99 seconds):")
        for name, h in snapshot["histograms"].items():
            emit(
                "  {:<44} {:>4} {:>9.4f} {:>9.4f} {:>9.4f} {:>9.4f}".format(
                    name, h["count"], h["mean"], h["p50"], h["p90"], h["p99"]
                )
            )
    from repro.core.compile import stats_from_snapshot

    compile_stats = stats_from_snapshot(snapshot)
    if compile_stats is not None:
        emit("\ncompiled hot path:")
        if compile_stats.get("active"):
            emit(
                "  {:.1%} of instructions replayed, {:.1%} of cycles; "
                "{} JIT hits / {} misses, {} records compiled".format(
                    compile_stats.get("fast_instruction_fraction", 0.0),
                    compile_stats.get("fast_cycle_fraction", 0.0),
                    compile_stats.get("jit_hits", 0),
                    compile_stats.get("jit_misses", 0),
                    compile_stats.get("records_compiled", 0),
                )
            )
            if compile_stats.get("superblock_runs"):
                emit(
                    "  superblocks: {} formed, {} dispatches retiring {} "
                    "instructions (mean {:.2f}/dispatch), {} deopts".format(
                        compile_stats.get("superblocks_formed", 0),
                        compile_stats.get("superblock_runs", 0),
                        compile_stats.get("superblock_instructions", 0),
                        compile_stats.get("superblock_mean_length", 0.0),
                        compile_stats.get("superblock_deopts", 0),
                    )
                )
            reasons = {
                key.split(".", 1)[1]: value
                for key, value in compile_stats.items()
                if key.startswith("deopt.") and value
            }
            if reasons:
                emit(
                    "  deopt reasons: "
                    + ", ".join(
                        "{} {}".format(reason, count)
                        for reason, count in sorted(reasons.items())
                    )
                )
            causes = {
                key.split(".", 1)[1]: value
                for key, value in compile_stats.items()
                if key.startswith("fallback.") and value
            }
            if causes:
                emit(
                    "  fallback causes: "
                    + ", ".join(
                        "{} {}".format(cause, count)
                        for cause, count in sorted(causes.items())
                    )
                )
        elif compile_stats.get("disabled_by_tracer"):
            emit("  disabled: tracer attached forced the interpreted path")
        else:
            emit("  disabled (REPRO_NO_COMPILE or incompatible board)")
    emit("\nprovenance:")
    for manifest in manifests:
        emit(
            "  {:<24} config={} seed={}+{} wall={:.2f}s".format(
                manifest["spec_name"],
                manifest["config_hash"][:12],
                manifest["profile_seed"],
                manifest["seed_offset"],
                manifest["wall_seconds"],
            )
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="VAX-11/780 micro-PC histogram study, reproduced",
    )
    parser.add_argument(
        "-v",
        "--verbose",
        action="store_true",
        help="debug-level diagnostics on stderr",
    )
    parser.add_argument(
        "-q",
        "--quiet",
        action="store_true",
        help="warnings and errors only on stderr",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-workloads").set_defaults(func=cmd_list_workloads)
    sub.add_parser("diagram").set_defaults(func=cmd_diagram)

    run_parser = sub.add_parser("run", help="measure one workload")
    run_parser.add_argument("workload")
    run_parser.add_argument("--instructions", type=int, default=10_000)
    run_parser.add_argument("--warmup", type=int, default=2_000)
    run_parser.set_defaults(func=cmd_run)

    composite_parser = sub.add_parser("composite", help="the five-workload composite")
    composite_parser.add_argument("--instructions", type=int, default=10_000)
    composite_parser.add_argument("--warmup", type=int, default=2_000)
    composite_parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="fan the workload runs out over N processes (results are "
        "bit-identical to --jobs 1)",
    )
    composite_parser.add_argument(
        "--shards",
        type=int,
        default=1,
        help="split each workload's measurement into K resumable shards "
        "(results are bit-identical to --shards 1; finished shards are "
        "cached and replayed on re-runs)",
    )
    composite_parser.add_argument(
        "--cache-dir",
        default=None,
        help="run cache root (default $REPRO_CACHE_DIR or .repro-cache)",
    )
    composite_parser.add_argument(
        "--no-cache",
        action="store_true",
        help="shard without caching (one in-process chain, nothing reused)",
    )
    composite_parser.add_argument(
        "--retries",
        type=int,
        default=0,
        help="extra attempts per workload before declaring it failed "
        "(exponential backoff between attempts)",
    )
    composite_parser.add_argument(
        "--spec-timeout",
        type=float,
        default=None,
        help="per-workload wall-clock budget in seconds; a stuck run "
        "costs one attempt and its pool is recycled",
    )
    composite_parser.add_argument(
        "--on-error",
        choices=("raise", "collect"),
        default="raise",
        help="'raise' aborts on the first failed workload (the default); "
        "'collect' finishes the rest and reports what failed (exit 1)",
    )
    composite_parser.add_argument(
        "--interrupt-report",
        default=".repro-interrupted.json",
        help="where Ctrl-C persists the partial failure report "
        "(the sweep resumes by simply re-running: the cache replays "
        "finished shards)",
    )
    composite_parser.set_defaults(func=cmd_composite)

    snapshot_parser = sub.add_parser(
        "snapshot", help="freeze / inspect a machine snapshot"
    )
    snapshot_sub = snapshot_parser.add_subparsers(dest="action", required=True)
    snapshot_save = snapshot_sub.add_parser(
        "save", help="run a workload and freeze the machine mid-measurement"
    )
    snapshot_save.add_argument("workload")
    snapshot_save.add_argument("--instructions", type=int, default=2_000,
                               help="measured instructions to run before freezing")
    snapshot_save.add_argument("--warmup", type=int, default=500)
    snapshot_save.add_argument(
        "--output", default=None, help="snapshot path (default <workload>_<n>.snap)"
    )
    snapshot_save.set_defaults(func=cmd_snapshot)
    snapshot_info = snapshot_sub.add_parser(
        "info", help="print a snapshot's header (version, digest, machine state)"
    )
    snapshot_info.add_argument("path")
    snapshot_info.set_defaults(func=cmd_snapshot)

    cache_parser = sub.add_parser("cache", help="inspect the run cache")
    cache_sub = cache_parser.add_subparsers(dest="action", required=True)
    for action, help_text in (
        ("info", "summary: object counts and bytes by kind"),
        ("ls", "list every cached object"),
        ("clear", "delete every cached object"),
    ):
        action_parser = cache_sub.add_parser(action, help=help_text)
        action_parser.add_argument(
            "--cache-dir",
            default=None,
            help="cache root (default $REPRO_CACHE_DIR or .repro-cache)",
        )
        action_parser.set_defaults(func=cmd_cache)

    serve_parser = sub.add_parser(
        "serve", help="run the experiment service (HTTP/JSON job queue)"
    )
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument(
        "--port", type=int, default=8765,
        help="TCP port (0 = ask the OS; the bound port prints on stdout)",
    )
    serve_parser.add_argument(
        "--jobs", type=int, default=1, help="process-pool width per sweep"
    )
    serve_parser.add_argument(
        "--shards", type=int, default=1,
        help="resumable shards per workload measurement",
    )
    serve_parser.add_argument(
        "--cache-dir", default=None,
        help="run cache root (default $REPRO_CACHE_DIR or .repro-cache)",
    )
    serve_parser.add_argument(
        "--no-cache", action="store_true",
        help="serve without the content-addressed cache (no dedupe "
        "across restarts)",
    )
    serve_parser.add_argument(
        "--concurrency", type=int, default=2,
        help="job worker tasks; overlapping jobs dedupe in-flight",
    )
    serve_parser.add_argument(
        "--result-index", type=int, default=256,
        help="completed runs kept in the bounded result index",
    )
    serve_parser.add_argument("--retries", type=int, default=0)
    serve_parser.add_argument("--spec-timeout", type=float, default=None)
    serve_parser.set_defaults(func=cmd_serve)

    submit_parser = sub.add_parser(
        "submit", help="submit a sweep to a running experiment service"
    )
    submit_parser.add_argument(
        "workloads", nargs="*",
        help="workloads to measure (default: the five-workload composite)",
    )
    submit_parser.add_argument("--url", default="http://127.0.0.1:8765")
    submit_parser.add_argument("--instructions", type=int, default=10_000)
    submit_parser.add_argument("--warmup", type=int, default=2_000)
    submit_parser.add_argument(
        "--on-error", choices=("raise", "collect"), default="raise"
    )
    submit_parser.add_argument(
        "--wait", action="store_true", help="poll until the job finishes"
    )
    submit_parser.add_argument("--timeout", type=float, default=600.0)
    submit_parser.add_argument(
        "--check", action="store_true",
        help="with --wait: fetch each result and evaluate the counter "
        "identities on it (exit 1 on a broken invariant)",
    )
    submit_parser.add_argument(
        "--json", action="store_true", help="emit the job record as JSON"
    )
    submit_parser.set_defaults(func=cmd_submit)

    poll_parser = sub.add_parser(
        "poll", help="inspect service jobs and scheduler statistics"
    )
    poll_parser.add_argument(
        "job", nargs="?", default=None, help="job id (default: list all jobs)"
    )
    poll_parser.add_argument("--url", default="http://127.0.0.1:8765")
    poll_parser.add_argument(
        "--wait", action="store_true", help="poll until the job finishes"
    )
    poll_parser.add_argument("--timeout", type=float, default=600.0)
    poll_parser.add_argument(
        "--stats", action="store_true",
        help="print GET /stats (dedupe counters, index occupancy) instead",
    )
    poll_parser.set_defaults(func=cmd_poll)

    sweep_parser = sub.add_parser(
        "sweep", help="design-space sweep of one machine parameter"
    )
    sweep_parser.add_argument("workload")
    sweep_parser.add_argument("param", choices=sorted(_SWEEP_PARAMS))
    sweep_parser.add_argument("values", type=int, nargs="+")
    sweep_parser.add_argument("--instructions", type=int, default=6_000)
    sweep_parser.add_argument("--warmup", type=int, default=1_500)
    sweep_parser.add_argument("--jobs", type=int, default=1)
    sweep_parser.set_defaults(func=cmd_sweep)

    opcode_parser = sub.add_parser("opcodes", help="per-opcode frequency report")
    opcode_parser.add_argument("workload")
    opcode_parser.add_argument("--instructions", type=int, default=10_000)
    opcode_parser.add_argument("--warmup", type=int, default=2_000)
    opcode_parser.add_argument("--top", type=int, default=15)
    opcode_parser.set_defaults(func=cmd_opcodes)

    sub.add_parser("listing", help="control-store layout").set_defaults(func=cmd_listing)

    trace_parser = sub.add_parser(
        "trace", help="run one workload with cycle-level tracing and export it"
    )
    trace_parser.add_argument("workload")
    trace_parser.add_argument("--instructions", type=int, default=2_000)
    trace_parser.add_argument("--warmup", type=int, default=500)
    trace_parser.add_argument(
        "--output", default=None, help="output path stem (default trace_<workload>)"
    )
    trace_parser.add_argument(
        "--format",
        choices=("json", "binary", "both", "store"),
        default="json",
        help="Chrome trace-event JSON, compact binary dump, both, or the "
        "indexed on-disk store that `repro query --trace` reads",
    )
    trace_parser.add_argument(
        "--capacity",
        type=int,
        default=262_144,
        help="ring-buffer size; older events beyond it are dropped",
    )
    trace_parser.set_defaults(func=cmd_trace)

    query_parser = sub.add_parser(
        "query",
        help='run a trace query, e.g. "stall cycles where track=MEM"',
    )
    query_parser.add_argument(
        "expression",
        help="query text: [count|sum|mean|histogram] <measure> "
        "[where k=v [and k=v]...] [group by name|track|phase|routine]",
    )
    query_parser.add_argument(
        "--trace",
        default=None,
        help="query an existing trace store (written by trace --format store)",
    )
    query_parser.add_argument(
        "--workload",
        default=None,
        help="run this workload traced in-process and query the capture",
    )
    query_parser.add_argument("--instructions", type=int, default=5_000)
    query_parser.add_argument("--warmup", type=int, default=1_000)
    query_parser.add_argument(
        "--jit",
        action="store_true",
        help="capture compile-lifecycle events instead of the cycle trace "
        "(keeps the compiled hot path enabled; query the JIT track)",
    )
    query_parser.add_argument(
        "--capacity",
        type=int,
        default=1_048_576,
        help="capture ring size for --workload runs",
    )
    query_parser.add_argument(
        "--json", action="store_true", help="emit the answer as JSON"
    )
    query_parser.set_defaults(func=cmd_query)

    check_parser = sub.add_parser(
        "check",
        help="evaluate every counter identity; exit 1 on any broken invariant",
    )
    check_parser.add_argument(
        "workload",
        nargs="?",
        default=None,
        help="workload to check (default: all five)",
    )
    check_parser.add_argument("--instructions", type=int, default=10_000)
    check_parser.add_argument("--warmup", type=int, default=2_000)
    check_parser.add_argument(
        "--trace",
        action="store_true",
        help="also run traced and check trace-vs-counter identities",
    )
    check_parser.add_argument(
        "--capacity",
        type=int,
        default=1_048_576,
        help="tracer ring size for --trace runs (a ring that drops events "
        "skips the trace identities)",
    )
    check_parser.add_argument(
        "--json", action="store_true", help="emit the reports as JSON"
    )
    check_parser.set_defaults(func=cmd_check)

    validate_parser = sub.add_parser(
        "validate",
        help="run directed probes with analytically known event counts; "
        "exit 1 when the machine refutes the model",
    )
    validate_parser.add_argument(
        "--probe", default=None, help="run a single probe by name"
    )
    validate_parser.add_argument(
        "--canonical",
        action="store_true",
        help="run only the five canonical probes (the CI validation leg)",
    )
    validate_parser.add_argument(
        "--mode",
        default="all",
        choices=("all", "interpreted", "compiled", "tier1", "current"),
        help="compile mode(s) to run under; 'current' keeps the caller's "
        "environment (default: all three pinned modes)",
    )
    validate_parser.add_argument(
        "--no-trace",
        action="store_true",
        help="skip the traced arm (trace-vs-counter checks)",
    )
    validate_parser.add_argument(
        "--list", action="store_true", help="list the probe registry and exit"
    )
    validate_parser.add_argument(
        "--json", action="store_true", help="emit the reports as JSON"
    )
    validate_parser.set_defaults(func=cmd_validate)

    bench_parser = sub.add_parser(
        "bench",
        help="warm/cold composite benchmark vs the committed BENCH_engine.json",
    )
    bench_parser.add_argument(
        "--instructions",
        type=int,
        default=None,
        help="instructions per workload (default: the committed config)",
    )
    bench_parser.add_argument(
        "--warmup",
        type=int,
        default=None,
        help="warmup instructions (default: the committed config)",
    )
    bench_parser.add_argument(
        "--trials", type=int, default=2, help="warm trials (best one reported)"
    )
    bench_parser.add_argument(
        "--baseline",
        default="BENCH_engine.json",
        help="committed benchmark report to diff against",
    )
    bench_parser.set_defaults(func=cmd_bench)

    stats_parser = sub.add_parser(
        "stats", help="metrics + provenance for one workload (or the composite)"
    )
    stats_parser.add_argument("workload", nargs="?", default=None)
    stats_parser.add_argument("--instructions", type=int, default=5_000)
    stats_parser.add_argument("--warmup", type=int, default=1_000)
    stats_parser.add_argument("--jobs", type=int, default=1)
    stats_parser.add_argument(
        "--json", action="store_true", help="emit the snapshot as JSON"
    )
    stats_parser.set_defaults(func=cmd_stats)

    return parser


def main(argv=None) -> int:
    from repro.core.engine import EngineError

    parser = build_parser()
    args = parser.parse_args(argv)
    if args.quiet:
        set_level(WARN)
    elif args.verbose:
        set_level(DEBUG)
    try:
        return args.func(args)
    except EngineError as error:
        get_logger("repro").error(
            "engine run failed", spec=error.spec_name
        )
        get_logger("repro").error(error.worker_traceback.rstrip())
        return 1


if __name__ == "__main__":
    raise SystemExit(main())

"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list-workloads``
    The five workload profiles and their populations.
``diagram``
    Render Figure 1 (the machine's block diagram).
``run WORKLOAD``
    Measure one workload and print the paper's tables.
``composite``
    The headline experiment: measure all five workloads and print every
    table from the summed histograms.  ``--jobs N`` fans the five runs
    out over a process pool with bit-identical results.
``sweep WORKLOAD PARAM VALUES...``
    Design-space sweep of one machine parameter (``cache_kb`` /
    ``tb_half`` / ``wb_drain``) against the baseline, optionally
    parallel with ``--jobs``.
``opcodes WORKLOAD``
    The Clark & Levy-style per-opcode frequency report.
``listing``
    Dump the control-store layout (the analyst's address map).
"""

from __future__ import annotations

import argparse
import sys

from repro.core import tables
from repro.core.reduction import COLUMNS, ROWS
from repro.core.report import matrix_to_text


def _print_all_tables(result) -> None:
    print(
        "\n{}: {} instructions, CPI {:.3f}\n".format(
            result.name, result.instructions, result.cpi
        )
    )

    table1 = tables.table1(result)
    print("Table 1: opcode group frequency (percent)")
    for group, percent in sorted(table1.items(), key=lambda kv: -kv[1]):
        print("  {:<12} {:6.2f}".format(group, percent))

    table2 = tables.table2(result)
    print("\nTable 2: PC-changing instructions (% of instr / % taken)")
    for row, cells in table2.items():
        if cells["percent_of_instructions"] > 0:
            print(
                "  {:<14} {:6.1f} {:6.1f}".format(
                    row, cells["percent_of_instructions"], cells["percent_taken"]
                )
            )

    table3 = tables.table3(result)
    print(
        "\nTable 3: {:.3f} first + {:.3f} other specifiers, "
        "{:.3f} branch displacements per instruction".format(
            table3["spec1"], table3["spec26"], table3["branch_displacements"]
        )
    )

    table4 = tables.table4(result)
    print("\nTable 4: specifier modes (percent of all specifiers)")
    for row, cells in table4.items():
        print("  {:<22} {:6.2f}".format(row, cells["total"]))

    table5 = tables.table5(result)
    print("\nTable 5: reads {:.3f} / writes {:.3f} per instruction".format(
        table5["total"]["reads"], table5["total"]["writes"]))

    table6 = tables.table6(result)
    print("Table 6: average instruction {:.2f} bytes".format(table6["total_bytes"]))

    table7 = tables.table7(result)
    print("\nTable 7: headways (instructions between events)")
    for event, headway in table7.items():
        print("  {:<28} {:8.0f}".format(event, headway))

    print()
    table8 = tables.table8(result)
    print(
        matrix_to_text(
            {row: table8[row] for row in ROWS + ["total"]},
            COLUMNS + ["total"],
            "Table 8: cycles per average instruction",
        )
    )

    table9 = tables.table9(result)
    print("\nTable 9: execute cycles within each group")
    for row, cells in table9.items():
        print("  {:<12} {:8.2f}".format(row, cells["total"]))

    sec41 = tables.sec41_istream(result)
    sec42 = tables.sec42_cache_tb(result)
    print(
        "\nSec 4.1: {:.2f} IB refs/instr at {:.2f} bytes/ref".format(
            sec41["ib_references_per_instruction"], sec41["bytes_per_reference"]
        )
    )
    print(
        "Sec 4.2: {:.3f} cache read misses/instr; {:.4f} TB misses/instr "
        "at {:.1f} cycles each".format(
            sec42["cache_read_misses_per_instruction"],
            sec42["tb_misses_per_instruction"],
            sec42["cycles_per_tb_miss"],
        )
    )


def cmd_list_workloads(_args) -> int:
    from repro.workloads import COMPOSITE_WORKLOAD_NAMES, PROFILES

    for name in COMPOSITE_WORKLOAD_NAMES:
        profile = PROFILES[name]
        print("{:<20} {:>3} users  {}".format(name, profile.users, profile.description))
    return 0


def cmd_diagram(_args) -> int:
    from repro.core.monitor import UPCMonitor
    from repro.cpu import VAX780

    print(VAX780(monitor=UPCMonitor.build()).block_diagram())
    return 0


def cmd_run(args) -> int:
    from repro.core.experiment import run_workload

    result = run_workload(
        args.workload,
        instructions=args.instructions,
        warmup_instructions=args.warmup,
    )
    _print_all_tables(result)
    return 0


def cmd_composite(args) -> int:
    from repro.core.experiment import run_composite_experiment
    from repro.workloads import COMPOSITE_WORKLOAD_NAMES

    print(
        "measuring {} workloads ({})...".format(
            len(COMPOSITE_WORKLOAD_NAMES),
            "sequentially" if args.jobs <= 1 else "{} jobs".format(args.jobs),
        ),
        file=sys.stderr,
    )
    result = run_composite_experiment(
        instructions_per_workload=args.instructions,
        warmup_instructions=args.warmup,
        jobs=args.jobs,
    )
    _print_all_tables(result)
    return 0


#: ``sweep`` parameter name -> MachineConfig field constructor
_SWEEP_PARAMS = {
    "cache_kb": lambda v: {"cache_size_bytes": int(v) * 1024},
    "tb_half": lambda v: {"tb_half_entries": int(v)},
    "wb_drain": lambda v: {"wb_drain_cycles": int(v)},
}


def cmd_sweep(args) -> int:
    from repro.core.engine import MachineConfig, RunSpec, run_specs

    make_fields = _SWEEP_PARAMS[args.param]
    configs = [None] + [MachineConfig(**make_fields(value)) for value in args.values]
    specs = [
        RunSpec(
            workload=args.workload,
            instructions=args.instructions,
            warmup_instructions=args.warmup,
            config=config,
        )
        for config in configs  # baseline first, then the sweep points
    ]
    print(
        "sweeping {} over {}={} ({})...".format(
            args.workload,
            args.param,
            ",".join(str(v) for v in args.values),
            "sequentially" if args.jobs <= 1 else "{} jobs".format(args.jobs),
        ),
        file=sys.stderr,
    )
    runs = run_specs(specs, jobs=args.jobs)
    header = "{:<40} {:>7} {:>8} {:>8} {:>9} {:>9}".format(
        "configuration", "CPI", "rstall/i", "wstall/i", "ibstall/i", "memmgmt/i"
    )
    print(header)
    print("-" * len(header))
    for run in runs:
        result = run.result
        columns = result.reduction.column_totals()
        instructions = max(1, result.instructions)
        print(
            "{:<40} {:7.3f} {:8.3f} {:8.3f} {:9.3f} {:9.3f}".format(
                result.name,
                result.cpi,
                columns["rstall"] / instructions,
                columns["wstall"] / instructions,
                columns["ibstall"] / instructions,
                result.reduction.row_totals()["memmgmt"] / instructions,
            )
        )
    return 0


def cmd_opcodes(args) -> int:
    from repro.core.experiment import run_workload
    from repro.core.opcode_report import coverage_count, frequency_cost_contrast

    result = run_workload(
        args.workload, instructions=args.instructions, warmup_instructions=args.warmup
    )
    print(frequency_cost_contrast(result, top=args.top))
    print()
    print(
        "{} distinct opcodes cover 90% of dynamic execution".format(
            coverage_count(result, 90.0)
        )
    )
    return 0


def cmd_listing(_args) -> int:
    from repro.ucode.routines import build_layout

    print(build_layout().store.listing())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="VAX-11/780 micro-PC histogram study, reproduced",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-workloads").set_defaults(func=cmd_list_workloads)
    sub.add_parser("diagram").set_defaults(func=cmd_diagram)

    run_parser = sub.add_parser("run", help="measure one workload")
    run_parser.add_argument("workload")
    run_parser.add_argument("--instructions", type=int, default=10_000)
    run_parser.add_argument("--warmup", type=int, default=2_000)
    run_parser.set_defaults(func=cmd_run)

    composite_parser = sub.add_parser("composite", help="the five-workload composite")
    composite_parser.add_argument("--instructions", type=int, default=10_000)
    composite_parser.add_argument("--warmup", type=int, default=2_000)
    composite_parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="fan the workload runs out over N processes (results are "
        "bit-identical to --jobs 1)",
    )
    composite_parser.set_defaults(func=cmd_composite)

    sweep_parser = sub.add_parser(
        "sweep", help="design-space sweep of one machine parameter"
    )
    sweep_parser.add_argument("workload")
    sweep_parser.add_argument("param", choices=sorted(_SWEEP_PARAMS))
    sweep_parser.add_argument("values", type=int, nargs="+")
    sweep_parser.add_argument("--instructions", type=int, default=6_000)
    sweep_parser.add_argument("--warmup", type=int, default=1_500)
    sweep_parser.add_argument("--jobs", type=int, default=1)
    sweep_parser.set_defaults(func=cmd_sweep)

    opcode_parser = sub.add_parser("opcodes", help="per-opcode frequency report")
    opcode_parser.add_argument("workload")
    opcode_parser.add_argument("--instructions", type=int, default=10_000)
    opcode_parser.add_argument("--warmup", type=int, default=2_000)
    opcode_parser.add_argument("--top", type=int, default=15)
    opcode_parser.set_defaults(func=cmd_opcodes)

    sub.add_parser("listing", help="control-store layout").set_defaults(func=cmd_listing)

    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())

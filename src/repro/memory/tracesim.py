"""Trace-driven cache and translation-buffer simulators.

The paper leans on two companion studies — Clark's cache measurements
(reference [2]) and Clark & Emer's TB simulation-and-measurement study
(reference [3]) — and notes that its context-switch headway "is useful in
setting the 'flush' interval in cache and translation buffer
simulations".  This module supplies those simulators: capture a virtual
reference trace from a running machine (via
:attr:`MemorySubsystem.trace_hook`), then replay it against arbitrary
cache/TB geometries and flush intervals without re-running the machine.

A reference that TB-missed during capture appears twice in the trace
(the microtrap retry re-issues it); replay handles this naturally — the
duplicate hits whatever structure the first occurrence filled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Tuple

from repro.memory.pagetable import PAGE_SHIFT


@dataclass(frozen=True)
class TraceEntry:
    """One captured reference: kind, virtual address, owning process."""

    kind: str  # 'iread' | 'dread' | 'write'
    va: int
    pid: int = 0


@dataclass
class ReferenceTrace:
    """A captured reference stream with context-switch markers."""

    entries: List[TraceEntry] = field(default_factory=list)
    switch_points: List[int] = field(default_factory=list)  # indices into entries

    def append(self, kind: str, va: int, pid: int) -> None:
        if self.entries and self.entries[-1].pid != pid:
            self.switch_points.append(len(self.entries))
        self.entries.append(TraceEntry(kind, va, pid))

    def __len__(self) -> int:
        return len(self.entries)

    @property
    def mean_switch_interval(self) -> float:
        """Average references between context switches."""
        if not self.switch_points:
            return float(len(self.entries))
        return len(self.entries) / (len(self.switch_points) + 1)


class TraceRecorder:
    """Captures a :class:`ReferenceTrace` from a running kernel's machine.

    Usage::

        recorder = TraceRecorder(kernel)
        recorder.start()
        kernel.run(max_instructions=...)
        trace = recorder.stop()
    """

    def __init__(self, kernel):
        self.kernel = kernel
        self.trace = ReferenceTrace()

    def _hook(self, kind: str, va: int) -> None:
        current = self.kernel.current
        pid = current.pid if current is not None else -1
        if current is not None and current.is_null:
            return  # the Null process is excluded from measurement
        self.trace.append(kind, va, pid)

    def start(self) -> None:
        self.kernel.machine.memory.trace_hook = self._hook

    def stop(self) -> "ReferenceTrace":
        self.kernel.machine.memory.trace_hook = None
        return self.trace


# ---------------------------------------------------------------------------
# replay models
# ---------------------------------------------------------------------------


@dataclass
class CacheSimResult:
    references: int = 0
    read_misses: int = 0
    write_misses: int = 0
    i_read_misses: int = 0
    d_read_misses: int = 0

    @property
    def read_miss_rate(self) -> float:
        return self.read_misses / self.references if self.references else 0.0


def simulate_cache(
    trace: ReferenceTrace,
    size_bytes: int = 8 * 1024,
    ways: int = 2,
    block_size: int = 8,
    write_allocate: bool = False,
    flush_on_switch: bool = False,
) -> CacheSimResult:
    """Replay a trace against a set-associative cache geometry.

    Addresses are virtual (the 780's cache was physical, but within one
    process the mapping is effectively linear, and per-process tagging is
    approximated by mixing the pid into the tag).
    """
    if size_bytes % (ways * block_size):
        raise ValueError("size must be a multiple of ways * block_size")
    sets = size_bytes // (ways * block_size)
    lines = [[(-1, 0)] * ways for _ in range(sets)]  # (tag, lru)
    clock = 0
    result = CacheSimResult()
    switch_set = set(trace.switch_points)

    for index, entry in enumerate(trace.entries):
        if flush_on_switch and index in switch_set:
            lines = [[(-1, 0)] * ways for _ in range(sets)]
        clock += 1
        block = entry.va // block_size
        set_index = block % sets
        tag = ((block // sets) << 8) | (entry.pid & 0xFF)
        row = lines[set_index]
        hit_way = next((w for w, (t, _) in enumerate(row) if t == tag), None)
        result.references += 1
        if entry.kind == "write":
            if hit_way is None:
                result.write_misses += 1
                if not write_allocate:
                    continue
            else:
                row[hit_way] = (tag, clock)
                continue
        else:
            if hit_way is not None:
                row[hit_way] = (tag, clock)
                continue
            result.read_misses += 1
            if entry.kind == "iread":
                result.i_read_misses += 1
            else:
                result.d_read_misses += 1
        victim = min(range(ways), key=lambda w: row[w][1])
        row[victim] = (tag, clock)
    return result


@dataclass
class TBSimResult:
    references: int = 0
    misses: int = 0
    flushes: int = 0

    @property
    def miss_rate(self) -> float:
        return self.misses / self.references if self.references else 0.0


def simulate_tb(
    trace: ReferenceTrace,
    half_entries: int = 64,
    flush_interval: Optional[int] = None,
    flush_on_switch: bool = True,
) -> TBSimResult:
    """Replay page references against a direct-mapped process-half TB.

    ``flush_interval`` (references between synthetic flushes) overrides
    the trace's real context-switch points when given — this is exactly
    the knob the paper says its Table 7 informs.  System-space pages
    (VA bit 31) go to an unflushed system half, as on the 780.
    """
    process_half = [-1] * half_entries
    system_half = [-1] * half_entries
    index_bits = half_entries.bit_length() - 1
    result = TBSimResult()
    switch_set = set(trace.switch_points)
    since_flush = 0

    for index, entry in enumerate(trace.entries):
        flush = False
        if flush_interval is not None:
            since_flush += 1
            if since_flush >= flush_interval:
                flush = True
                since_flush = 0
        elif flush_on_switch and index in switch_set:
            flush = True
        if flush:
            process_half = [-1] * half_entries
            result.flushes += 1

        is_system = bool(entry.va & 0x8000_0000)
        vpn = (entry.va & 0x3FFF_FFFF) >> PAGE_SHIFT
        slot = vpn % half_entries
        tag = ((vpn >> index_bits) << 8) | (0 if is_system else (entry.pid & 0xFF))
        half = system_half if is_system else process_half
        result.references += 1
        if half[slot] != tag:
            result.misses += 1
            half[slot] = tag
    return result


def flush_interval_sweep(
    trace: ReferenceTrace,
    intervals: Iterable[int],
    half_entries: int = 64,
) -> List[Tuple[int, float]]:
    """The paper's suggested study: TB miss rate as a function of the
    flush interval.  Returns (interval, miss_rate) pairs."""
    return [
        (interval, simulate_tb(trace, half_entries=half_entries, flush_interval=interval).miss_rate)
        for interval in intervals
    ]

"""The 11/780's single-longword write buffer.

"In order to avoid waiting for the write to complete in memory the 11/780
provides a 4-byte write buffer.  Thus it takes one cycle for the EBOX to
initiate a write and then it continues microcode execution, which will be
held up in the future only if another write request is made before the
last one completed" (Section 2.1).

The buffer is modelled in EBOX cycle time: each accepted write makes the
buffer busy until ``now + drain_cycles``; a write arriving earlier first
stalls for the remaining busy time (those are the paper's *write-stall*
cycles).  Character-string microcode exploits this by spacing its writes
six cycles apart — a behaviour the CHARACTER microroutines reproduce and
Table 8's tiny character W-stall cell confirms.
"""

from __future__ import annotations

from dataclasses import dataclass

#: SBI write transaction time in EBOX cycles (6 x 200ns, matching the
#: "a write will stall if attempted less than 6 cycles after the previous
#: write (in the simplest case)" figure).
DEFAULT_DRAIN_CYCLES = 6


@dataclass
class WriteBufferStats:
    writes: int = 0
    stalled_writes: int = 0
    stall_cycles: int = 0


class WriteBuffer:
    """One-longword write-through buffer with cycle-time busy tracking."""

    def __init__(self, drain_cycles: int = DEFAULT_DRAIN_CYCLES):
        self.drain_cycles = drain_cycles
        self._busy_until = 0
        self.stats = WriteBufferStats()

    def submit(self, now: int) -> int:
        """Submit one longword write at EBOX cycle ``now``.

        Returns the number of *write-stall* cycles the EBOX incurs before
        the buffer accepts the write (0 when the buffer was idle).
        """
        stall = max(0, self._busy_until - now)
        accept_time = now + stall
        self._busy_until = accept_time + self.drain_cycles
        self.stats.writes += 1
        if stall:
            self.stats.stalled_writes += 1
            self.stats.stall_cycles += stall
        return stall

    def busy_cycles_remaining(self, now: int) -> int:
        """How long until the buffer drains (diagnostics / tests)."""
        return max(0, self._busy_until - now)

    def reset(self) -> None:
        self._busy_until = 0

"""The VAX-11/780 Translation Buffer.

128 entries split into two direct-mapped halves of 64: one for system
space, one for process (P0/P1) space.  The process half is flushed on
every context switch (LDPCTX), which is why the paper points at
context-switch headway as "useful in setting the 'flush' interval in
cache and translation buffer simulations".

A lookup either hits (returning the cached PFN) or raises :class:`TBMiss`;
on the real machine an EBOX-reference miss asserts a microcode interrupt
and the miss-service microroutine walks the page table and calls
:meth:`TranslationBuffer.fill`.  The EBOX model does exactly that.

Entries live in three dense flat tables (``_tags``/``_pfns``/``_writable``,
process half first, system half at offset ``half_entries``) rather than
per-entry objects.  Flushes overwrite slots in place — the table objects
are never rebound — so the memory subsystem's fused fast paths and the
replay compiler can hold direct references to them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.memory.pagetable import PAGE_SHIFT, PAGE_SIZE, region_of, vpn_of

HALF_ENTRIES = 64


class TBMiss(Exception):
    """Raised when a virtual address has no TB entry.

    Carries everything the miss-service microroutine needs.
    """

    def __init__(self, va: int, write: bool, stream: str):
        super().__init__("TB miss at {:#010x}".format(va))
        self.va = va
        self.write = write
        self.stream = stream  # 'i' or 'd'


@dataclass
class TBStats:
    """Per-stream hit/miss counters (paper: 0.029 misses/instr total,
    0.020 D-stream + 0.009 I-stream)."""

    hits: int = 0
    misses: int = 0
    d_misses: int = 0
    i_misses: int = 0
    process_flushes: int = 0

    @property
    def references(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.references if self.references else 0.0


class TranslationBuffer:
    """Two direct-mapped halves (system / process), 64 entries each on
    the 11/780; the half size is parameterized for ablation studies."""

    def __init__(self, half_entries: int = HALF_ENTRIES):
        if half_entries <= 0 or half_entries & (half_entries - 1):
            raise ValueError("half_entries must be a positive power of two")
        self.half_entries = half_entries
        self._index_bits = half_entries.bit_length() - 1
        self._index_mask = half_entries - 1
        # Flat tables: process half at [0, half), system half at
        # [half, 2*half).  tag -1 = invalid.
        self._tags = [-1] * (2 * half_entries)
        self._pfns = [0] * (2 * half_entries)
        self._writable = [False] * (2 * half_entries)
        self.stats = TBStats()

    _REGION_CODE = {"p0": 0, "p1": 1, "system": 2}

    def _slot_and_tag(self, va: int):
        # Index by low VPN bits within the region; tag with the rest plus
        # the region so P0 and P1 pages cannot alias each other.
        vpn = vpn_of(va)
        index = vpn & self._index_mask
        region = region_of(va)
        tag = (vpn >> self._index_bits) << 2 | self._REGION_CODE[region]
        if region == "system":
            index += self.half_entries
        return index, tag

    def translate(self, va: int, write: bool = False, stream: str = "d") -> int:
        """Translate ``va``; raise :class:`TBMiss` when not resident.

        Returns the physical address.  (Write-protection faults are the
        VMS layer's concern; the TB only caches what it was filled with.)

        This is the hottest call in the simulator (every I-stream fetch
        and D-stream piece lands here), so ``_slot_and_tag`` is inlined
        as straight arithmetic: region p0/p1/system is the top VA bit
        pair (0/1/2+), matching :func:`~repro.memory.pagetable.region_of`.
        """
        vpn = (va & 0x3FFFFFFF) >> PAGE_SHIFT
        top = (va >> 30) & 3
        if top >= 2:
            index = (vpn & self._index_mask) + self.half_entries
            tag = (vpn >> self._index_bits) << 2 | 2
        else:
            index = vpn & self._index_mask
            tag = (vpn >> self._index_bits) << 2 | top
        if self._tags[index] != tag:
            stats = self.stats
            stats.misses += 1
            if stream == "i":
                stats.i_misses += 1
            else:
                stats.d_misses += 1
            raise TBMiss(va, write, stream)
        self.stats.hits += 1
        return (self._pfns[index] << PAGE_SHIFT) | (va & (PAGE_SIZE - 1))

    def probe(self, va: int) -> bool:
        """True when a translation is resident (no statistics side effects)."""
        index, tag = self._slot_and_tag(va)
        return self._tags[index] == tag

    def peek(self, va: int):
        """Physical address when resident, else None — no statistics or
        timing side effects (the replay compiler's I-stream lookahead)."""
        index, tag = self._slot_and_tag(va)
        if self._tags[index] != tag:
            return None
        return (self._pfns[index] << PAGE_SHIFT) | (va & (PAGE_SIZE - 1))

    def fill(self, va: int, pfn: int, writable: bool) -> None:
        """Install a translation (the tail of the miss-service routine)."""
        index, tag = self._slot_and_tag(va)
        self._tags[index] = tag
        self._pfns[index] = pfn
        self._writable[index] = writable

    def invalidate(self, va: int) -> None:
        """TBIS: invalidate a single virtual address if resident."""
        index, tag = self._slot_and_tag(va)
        if self._tags[index] == tag:
            self._tags[index] = -1
            self._pfns[index] = 0
            self._writable[index] = False

    def flush_process(self) -> None:
        """Flush the process half (LDPCTX / process-space TBIA)."""
        half = self.half_entries
        self._tags[0:half] = [-1] * half
        self._pfns[0:half] = [0] * half
        self._writable[0:half] = [False] * half
        self.stats.process_flushes += 1

    def flush_all(self) -> None:
        """Full TBIA (used at boot)."""
        entries = 2 * self.half_entries
        self._tags[:] = [-1] * entries
        self._pfns[:] = [0] * entries
        self._writable[:] = [False] * entries

    def resident_count(self) -> int:
        """Number of valid entries (diagnostics)."""
        return sum(1 for tag in self._tags if tag != -1)

"""Byte-addressable physical memory.

All measured machines in the paper had 8 Megabytes; that is the default.
Values are little-endian, as everywhere on the VAX.
"""

from __future__ import annotations

import sys
import zlib

DEFAULT_MEMORY_BYTES = 8 * 1024 * 1024


class PhysicalMemory:
    """A flat little-endian byte array with bounds checking."""

    def __init__(self, size: int = DEFAULT_MEMORY_BYTES):
        if size <= 0:
            raise ValueError("memory size must be positive")
        self.size = size
        self._bytes = bytearray(size)
        self._bind_view()

    def _bind_view(self) -> None:
        # A zero-copy longword window over the byte array: aligned
        # longword loads (every I-stream fetch and most D-stream hits)
        # become one index instead of a slice + int.from_bytes.  The view
        # tracks in-place mutation of the bytearray; nothing here ever
        # resizes it, which is the one operation a live view forbids.
        # Native-endian cast, hence the byte-order guard (VAX memory is
        # little-endian); odd sizes cannot cast to 4-byte items.
        if sys.byteorder == "little" and self.size % 4 == 0:
            self._mem32 = memoryview(self._bytes).cast("I")
        else:
            self._mem32 = None

    def read(self, address: int, size: int) -> int:
        """Read ``size`` bytes at ``address`` as an unsigned integer."""
        end = address + size
        if address < 0 or end > self.size:
            raise IndexError(
                "physical read [{:#x}, {:#x}) outside memory of {:#x} bytes".format(
                    address, end, self.size
                )
            )
        return int.from_bytes(self._bytes[address:end], "little")

    def write(self, address: int, size: int, value: int) -> None:
        """Write ``size`` low-order bytes of ``value`` at ``address``."""
        end = address + size
        if address < 0 or end > self.size:
            raise IndexError(
                "physical write [{:#x}, {:#x}) outside memory of {:#x} bytes".format(
                    address, end, self.size
                )
            )
        self._bytes[address:end] = (value & ((1 << (8 * size)) - 1)).to_bytes(size, "little")

    def load(self, address: int, payload: bytes) -> None:
        """Bulk-load an image (used to install assembled programs)."""
        end = address + len(payload)
        if address < 0 or end > self.size:
            raise IndexError("image of {} bytes does not fit at {:#x}".format(len(payload), address))
        self._bytes[address:end] = payload

    def dump(self, address: int, size: int) -> bytes:
        """Copy out raw bytes (for tests and debugging)."""
        return bytes(self._bytes[address : address + size])

    # -- pickling ----------------------------------------------------------
    # Machine snapshots pickle the whole object graph, and the 8 MB array
    # is almost entirely zero pages; compressing it here keeps a snapshot
    # in the hundreds-of-kilobytes range instead of megabytes.  Level 1:
    # runs of zeros compress just as well and an order of magnitude
    # faster than the default level.

    def __getstate__(self):
        return {"size": self.size, "zbytes": zlib.compress(bytes(self._bytes), 1)}

    def __setstate__(self, state):
        self.size = state["size"]
        self._bytes = bytearray(zlib.decompress(state["zbytes"]))
        self._bind_view()

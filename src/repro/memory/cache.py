"""The VAX-11/780 data cache.

8 Kbytes, two-way set associative, 8-byte blocks, write-through with no
write allocation: "during a data write, the cache is accessed to update
its contents with the data being written.  Note, however, that if the
write access misses, the cache is not updated" (Section 2.1).

Both the EBOX (D-stream) and the Instruction Buffer (I-stream) reference
this single cache; the stats distinguish the streams because the paper's
Section 4.2 reports them separately (0.18 I-stream + 0.10 D-stream read
misses per instruction).

The tag store is two dense flat tables (``_tags``/``_lru``, one slot per
line, a set's ways adjacent) instead of per-line objects: every simulated
reference lands here, and flat indexing is what lets the memory
subsystem's fused fast paths and the replay compiler's superblocks charge
a reference without walking an object graph.  Plain lists beat the
``array`` module for this access pattern (array reads re-box every tag
into a fresh int; lists hand back the stored object).
"""

from __future__ import annotations

from dataclasses import dataclass

BLOCK_SIZE = 8
DEFAULT_CACHE_BYTES = 8 * 1024
DEFAULT_WAYS = 2


@dataclass
class CacheStats:
    """Read/write hit and miss counters, split by stream."""

    read_hits: int = 0
    read_misses: int = 0
    write_hits: int = 0
    write_misses: int = 0
    i_read_misses: int = 0
    d_read_misses: int = 0
    i_read_hits: int = 0
    d_read_hits: int = 0

    @property
    def read_references(self) -> int:
        return self.read_hits + self.read_misses

    @property
    def read_miss_rate(self) -> float:
        total = self.read_references
        return self.read_misses / total if total else 0.0


class Cache:
    """Physically-indexed, physically-tagged set-associative cache.

    The cache holds tags only — data always comes from
    :class:`~repro.memory.physical.PhysicalMemory`, which is correct for a
    write-through cache whose backing store is always up to date.  What
    the simulator needs from the cache is *timing truth*: whether each
    reference hit.
    """

    def __init__(
        self,
        size_bytes: int = DEFAULT_CACHE_BYTES,
        ways: int = DEFAULT_WAYS,
        block_size: int = BLOCK_SIZE,
    ):
        if size_bytes % (ways * block_size):
            raise ValueError("cache size must be a multiple of ways * block_size")
        self.block_size = block_size
        self.ways = ways
        self.sets = size_bytes // (ways * block_size)
        lines = self.sets * ways
        #: flat tag table, ``set * ways + way``; -1 = invalid.
        self._tags = [-1] * lines
        #: last-touch clock per line (same indexing).
        self._lru = [0] * lines
        self._clock = 0
        self.stats = CacheStats()

    def _base_and_tag(self, pa: int):
        block = pa // self.block_size
        return (block % self.sets) * self.ways, block // self.sets

    def read(self, pa: int, stream: str = "d") -> bool:
        """Look up one block read; returns True on hit, filling on miss.

        Inlined set/tag arithmetic over the flat tables: this and
        :meth:`~repro.memory.tb.TranslationBuffer.translate` sit on every
        simulated reference, so per-call overhead is throughput.
        """
        clock = self._clock + 1
        self._clock = clock
        block = pa // self.block_size
        ways = self.ways
        base = (block % self.sets) * ways
        tag = block // self.sets
        tags = self._tags
        stats = self.stats
        for i in range(base, base + ways):
            if tags[i] == tag:
                self._lru[i] = clock
                stats.read_hits += 1
                if stream == "i":
                    stats.i_read_hits += 1
                else:
                    stats.d_read_hits += 1
                return True
        stats.read_misses += 1
        if stream == "i":
            stats.i_read_misses += 1
        else:
            stats.d_read_misses += 1
        # First least-recently-touched way wins, matching min() over the
        # former per-line objects (ties resolve to the lowest way).
        lru = self._lru
        victim = base
        least = lru[base]
        for i in range(base + 1, base + ways):
            if lru[i] < least:
                least = lru[i]
                victim = i
        tags[victim] = tag
        lru[victim] = clock
        return False

    def write(self, pa: int) -> bool:
        """Look up one block write; updates the block only on hit
        (no write allocation).  Returns True on hit."""
        clock = self._clock + 1
        self._clock = clock
        block = pa // self.block_size
        ways = self.ways
        base = (block % self.sets) * ways
        tag = block // self.sets
        tags = self._tags
        for i in range(base, base + ways):
            if tags[i] == tag:
                self._lru[i] = clock
                self.stats.write_hits += 1
                return True
        self.stats.write_misses += 1
        return False

    def probe(self, pa: int) -> bool:
        """Check residency without statistics or LRU side effects."""
        base, tag = self._base_and_tag(pa)
        tags = self._tags
        for i in range(base, base + self.ways):
            if tags[i] == tag:
                return True
        return False

    def invalidate_all(self) -> None:
        """Full cache flush (boot time)."""
        lines = self.sets * self.ways
        self._tags[:] = [-1] * lines
        self._lru[:] = [0] * lines

    def blocks_spanned(self, pa: int, size: int) -> int:
        """How many cache blocks a [pa, pa+size) reference touches."""
        first = pa // self.block_size
        last = (pa + size - 1) // self.block_size
        return last - first + 1

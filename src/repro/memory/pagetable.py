"""VAX page tables, backed by real physical memory.

The VAX has 512-byte pages.  Page-table entries are 32-bit longwords with
a valid bit, protection field and page-frame number.  Crucially for the
paper's Section 4.2, PTEs live *in memory*: the TB-miss service microcode
fetches them through the data cache, and those fetches themselves can
miss ("Memory management has more than 3 times as many read-stalled
cycles as reads ... references to Page Table Entries [tend] to miss in
the cache").  Backing the tables with physical memory reproduces that
locality behaviour instead of faking it.
"""

from __future__ import annotations

from dataclasses import dataclass

PAGE_SIZE = 512
PAGE_SHIFT = 9

#: PTE bit layout (a simplification of the architectural PTE that keeps
#: the fields the simulator needs).
PTE_VALID = 1 << 31
PTE_WRITABLE = 1 << 30
_PFN_MASK = (1 << 25) - 1


@dataclass(frozen=True)
class PageTableEntry:
    """A decoded PTE."""

    pfn: int
    valid: bool
    writable: bool

    def pack(self) -> int:
        word = self.pfn & _PFN_MASK
        if self.valid:
            word |= PTE_VALID
        if self.writable:
            word |= PTE_WRITABLE
        return word

    @classmethod
    def unpack(cls, word: int) -> "PageTableEntry":
        return cls(
            pfn=word & _PFN_MASK,
            valid=bool(word & PTE_VALID),
            writable=bool(word & PTE_WRITABLE),
        )


class PageTable:
    """One region's page table, stored in a span of physical memory.

    ``base_pa`` is the physical address of PTE 0; entry *n* lives at
    ``base_pa + 4 * n``.  The table maps virtual page numbers *relative to
    the region base* (P0 pages count from 0 at VA 0; system pages count
    from 0 at VA 0x80000000).
    """

    def __init__(self, physical, base_pa: int, length: int):
        if base_pa % 4:
            raise ValueError("page table base must be longword aligned")
        self.physical = physical
        self.base_pa = base_pa
        self.length = length

    def pte_address(self, vpn: int) -> int:
        """Physical address of the PTE for relative page ``vpn``."""
        if not 0 <= vpn < self.length:
            raise IndexError("vpn {} outside page table of {} entries".format(vpn, self.length))
        return self.base_pa + 4 * vpn

    def map(self, vpn: int, pfn: int, writable: bool = True) -> None:
        """Install a valid mapping for relative page ``vpn``."""
        entry = PageTableEntry(pfn=pfn, valid=True, writable=writable)
        self.physical.write(self.pte_address(vpn), 4, entry.pack())

    def unmap(self, vpn: int) -> None:
        """Mark ``vpn`` invalid (the pager will fault it back in)."""
        self.physical.write(self.pte_address(vpn), 4, 0)

    def lookup(self, vpn: int) -> PageTableEntry:
        """Read and decode the PTE (without modelling the cache access —
        timing-visible PTE fetches go through :class:`MemorySubsystem`)."""
        return PageTableEntry.unpack(self.physical.read(self.pte_address(vpn), 4))


def region_of(va: int) -> str:
    """Which architectural region a virtual address falls in: p0/p1/system."""
    top = (va >> 30) & 3
    if top == 0:
        return "p0"
    if top == 1:
        return "p1"
    return "system"


def vpn_of(va: int) -> int:
    """Region-relative virtual page number of ``va``."""
    return (va & 0x3FFFFFFF) >> PAGE_SHIFT

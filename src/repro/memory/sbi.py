"""The Synchronous Backplane Interconnect (SBI).

The path between the cache and main memory.  A cache read miss becomes an
SBI read transaction; "in the simplest case (no concurrent memory
activity of other types) this takes 6 cycles on the 11/780" — and the
qualifier matters: the SBI is a *shared* resource, so a miss that arrives
while another transaction is in flight queues behind it.  Both the EBOX's
D-stream misses and the Instruction Buffer's fills travel here, which is
how I-stream traffic lengthens D-stream stalls (and vice versa) on the
real machine.

The SBI also carries Unibus traffic — notably the histogram monitor's
control commands, which the paper stresses are issued only outside
measurement intervals so monitoring is perturbation-free.  The simulator
enforces the same property: :class:`~repro.core.monitor.HistogramMonitor`
never generates SBI transactions while collecting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

#: Read-miss memory latency in EBOX cycles (the "simplest case" figure).
DEFAULT_READ_LATENCY = 6


@dataclass
class SBIStats:
    read_transactions: int = 0
    write_transactions: int = 0
    total_read_stall_cycles: int = 0
    queueing_cycles: int = 0


class SBI:
    """Fixed-latency backplane transactions with busy-queue modelling."""

    def __init__(self, read_latency: int = DEFAULT_READ_LATENCY):
        self.read_latency = read_latency
        self._busy_until = 0
        self.stats = SBIStats()

    def read_block(self, now: Optional[int] = None) -> int:
        """One cache-fill read; returns the total stall cycles it costs.

        With ``now`` (EBOX cycle time) supplied, the transaction queues
        behind any in-flight transaction; without it, the simplest-case
        fixed latency is charged (used by unit tests and cold paths).
        """
        self.stats.read_transactions += 1
        if now is None:
            self.stats.total_read_stall_cycles += self.read_latency
            return self.read_latency
        wait = max(0, self._busy_until - now)
        self._busy_until = now + wait + self.read_latency
        total = wait + self.read_latency
        self.stats.queueing_cycles += wait
        self.stats.total_read_stall_cycles += total
        return total

    def write_longword(self) -> None:
        """One write-through transaction.

        Writes overlap EBOX execution through the write buffer; their
        occupancy of the memory port is modelled by the write buffer's
        drain time (see :meth:`MemorySubsystem.read`), so they are only
        counted here.
        """
        self.stats.write_transactions += 1

    def busy_cycles_remaining(self, now: int) -> int:
        return max(0, self._busy_until - now)

"""The assembled memory subsystem: TB -> cache -> SBI, plus write buffer.

This is the component the EBOX and the Instruction Buffer talk to.  Its
job is twofold: move data, and report *cycle truth* — how many read-stall
or write-stall cycles each reference costs, whether it missed, whether it
was unaligned (two physical references), whether translation missed.

Physical references happen at longword (4-byte) granularity, matching the
paper's Section 3 assumption of 32-bit paths to the cache; a longword
reference that straddles a longword boundary therefore takes two physical
references (the paper's *unaligned* event, 0.016 per instruction).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, NamedTuple, Optional

from repro.memory.cache import Cache
from repro.memory.pagetable import PAGE_SHIFT, PAGE_SIZE, PageTable, PageTableEntry, region_of, vpn_of
from repro.memory.physical import PhysicalMemory
from repro.memory.sbi import SBI
from repro.memory.tb import TBMiss, TranslationBuffer
from repro.memory.write_buffer import WriteBuffer

READ_MISS_STALL_CYCLES = 6


class PageFault(Exception):
    """A reference touched a page whose PTE is invalid.

    The VMS layer's pager services this (and the paper's assumption that
    "all VAX implementations experience the same rate of operating system
    events" is about exactly these).
    """

    def __init__(self, va: int, write: bool):
        super().__init__("page fault at {:#010x}".format(va))
        self.va = va
        self.write = write


@dataclass
class ReadOutcome:
    """The result of one D-stream read."""

    value: int
    physical_refs: int
    cache_misses: int
    stall_cycles: int
    unaligned: bool


@dataclass
class WriteOutcome:
    """The result of one D-stream write."""

    physical_refs: int
    cache_hits: int
    stall_cycles: int
    unaligned: bool


class IStreamOutcome(NamedTuple):
    """The result of one IB longword fetch attempt.

    A NamedTuple, not a dataclass — the IB calls this roughly twice per
    simulated instruction and object construction was measurable; the
    hot caller unpacks it positionally.
    """

    value: int = 0
    cache_hit: bool = False
    tb_miss: bool = False
    fill_cycles: int = 0  # SBI transaction time on a miss (incl. queueing)


_ISTREAM_TB_MISS = IStreamOutcome(tb_miss=True)


@dataclass
class TBFillOutcome:
    """The result of servicing one TB miss (the microcode routine's work)."""

    pte_read_stall_cycles: int
    pte_cache_miss: bool


@dataclass
class AlignmentStats:
    unaligned_reads: int = 0
    unaligned_writes: int = 0


class MemorySubsystem:
    """TB, cache, write buffer, SBI and physical memory, wired per Figure 1."""

    def __init__(
        self,
        physical: Optional[PhysicalMemory] = None,
        tb: Optional[TranslationBuffer] = None,
        cache: Optional[Cache] = None,
        write_buffer: Optional[WriteBuffer] = None,
        sbi: Optional[SBI] = None,
    ):
        self.physical = physical if physical is not None else PhysicalMemory()
        self.tb = tb if tb is not None else TranslationBuffer()
        self.cache = cache if cache is not None else Cache()
        self.write_buffer = write_buffer if write_buffer is not None else WriteBuffer()
        self.sbi = sbi if sbi is not None else SBI()
        self.alignment = AlignmentStats()
        #: Optional repro.obs.trace.Tracer (wired by VAX780); consulted
        #: only on miss paths, never on the hit fast path.
        self.tracer = None
        #: Optional reference-trace hook: called as hook(kind, va) with
        #: kind in {"iread", "dread", "write"} for every virtual
        #: reference (before translation).  Used by the trace-driven
        #: cache/TB simulators (the stand-in for the address traces of
        #: the companion cache and TB studies).
        self.trace_hook = None
        #: Region name -> active PageTable. The VMS layer swaps the p0/p1
        #: entries at context switch (LDPCTX).
        self.page_tables: Dict[str, Optional[PageTable]] = {
            "p0": None,
            "p1": None,
            "system": None,
        }

    # -- configuration -------------------------------------------------

    def set_page_table(self, region: str, table: Optional[PageTable]) -> None:
        if region not in self.page_tables:
            raise ValueError("unknown region {!r}".format(region))
        self.page_tables[region] = table

    # -- translation ----------------------------------------------------

    def translate(self, va: int, write: bool = False, stream: str = "d") -> int:
        """TB translation; raises :class:`TBMiss` when not resident."""
        return self.tb.translate(va, write=write, stream=stream)

    def pte_lookup(self, va: int) -> PageTableEntry:
        """Walk the page table for ``va`` (no timing side effects)."""
        table = self.page_tables.get(region_of(va))
        if table is None:
            raise PageFault(va, write=False)
        vpn = vpn_of(va)
        if vpn >= table.length:
            raise PageFault(va, write=False)
        return table.lookup(vpn)

    def service_tb_miss(self, va: int, write: bool = False, now: int = 0) -> TBFillOutcome:
        """Do the memory work of the TB-miss microroutine.

        Reads the PTE from physical memory *through the cache* — the
        source of the paper's "3.5 [cycles] were read stalls due to the
        requested page-table entry not being in the cache" — validates
        it, and fills the TB.  Raises :class:`PageFault` on an invalid
        PTE.  The caller (the microcode engine) accounts for the routine's
        compute cycles; this method returns only the memory-timing part.
        """
        table = self.page_tables.get(region_of(va))
        if table is None:
            raise PageFault(va, write)
        vpn = vpn_of(va)
        if vpn >= table.length:
            raise PageFault(va, write)
        pte_pa = table.pte_address(vpn)
        hit = self.cache.read(pte_pa, stream="d")
        stall = 0 if hit else self.sbi.read_block(now)
        entry = table.lookup(vpn)
        if not entry.valid:
            raise PageFault(va, write)
        self.tb.fill(va, entry.pfn, entry.writable)
        if not hit and self.tracer is not None:
            self.tracer.instant(
                "MEM", now, "pte cache miss", {"va": va, "stall_cycles": stall}
            )
        return TBFillOutcome(pte_read_stall_cycles=stall, pte_cache_miss=not hit)

    # -- D-stream references ---------------------------------------------

    def read_fast(self, va: int, size: int):
        """Hit-only D-stream read: the fused fast path.

        Handles the overwhelmingly common reference — an aligned
        single-longword piece that hits both the TB and the cache — with
        the TB tag check, cache way scan and physical load flattened into
        one body over the dense tables, no outcome object.  Returns the
        value, or None (having touched *nothing*) when the reference
        needs the general path: any miss, an unaligned/multi-longword
        span, or an active reference-trace hook (which must see every
        reference exactly once).  Counters move only on the all-hit path
        and identically to :meth:`read`.
        """
        if size <= 0 or size + (va & 3) > 4 or self.trace_hook is not None:
            return None
        tb = self.tb
        vpn = (va & 0x3FFFFFFF) >> PAGE_SHIFT
        top = (va >> 30) & 3
        if top >= 2:
            index = (vpn & tb._index_mask) + tb.half_entries
            tag = (vpn >> tb._index_bits) << 2 | 2
        else:
            index = vpn & tb._index_mask
            tag = (vpn >> tb._index_bits) << 2 | top
        if tb._tags[index] != tag:
            return None  # the general path recounts the miss
        pa = (tb._pfns[index] << PAGE_SHIFT) | (va & (PAGE_SIZE - 1))
        cache = self.cache
        block = pa // cache.block_size
        ways = cache.ways
        base = (block % cache.sets) * ways
        ctag = block // cache.sets
        ctags = cache._tags
        way = -1
        for i in range(base, base + ways):
            if ctags[i] == ctag:
                way = i
                break
        if way < 0:
            return None  # the general path replays translate + miss fill
        clock = cache._clock + 1
        cache._clock = clock
        cache._lru[way] = clock
        cstats = cache.stats
        cstats.read_hits += 1
        cstats.d_read_hits += 1
        tb.stats.hits += 1
        mem32 = self.physical._mem32
        if mem32 is None:
            return self.physical.read(pa, size)
        value = mem32[pa >> 2]
        if size == 4:
            return value
        return (value >> ((pa & 3) << 3)) & ((1 << (size << 3)) - 1)

    def write_fast(self, va: int, size: int, value: int, now: int):
        """Aligned single-longword write-through: the fused fast path.

        Mirrors :meth:`write`'s aligned arm with the TB tag check and
        cache way scan flattened and no outcome object; a write proceeds
        on cache hit or miss alike, so only a TB miss (serviced via the
        general path's microtrap), a multi-longword span or an active
        trace hook decline.  Returns the write-stall cycles, or None to
        fall back.
        """
        if size <= 0 or size + (va & 3) > 4 or self.trace_hook is not None:
            return None
        tb = self.tb
        vpn = (va & 0x3FFFFFFF) >> PAGE_SHIFT
        top = (va >> 30) & 3
        if top >= 2:
            index = (vpn & tb._index_mask) + tb.half_entries
            tag = (vpn >> tb._index_bits) << 2 | 2
        else:
            index = vpn & tb._index_mask
            tag = (vpn >> tb._index_bits) << 2 | top
        if tb._tags[index] != tag:
            return None
        tb.stats.hits += 1
        pa = (tb._pfns[index] << PAGE_SHIFT) | (va & (PAGE_SIZE - 1))
        cache = self.cache
        clock = cache._clock + 1
        cache._clock = clock
        block = pa // cache.block_size
        ways = cache.ways
        base = (block % cache.sets) * ways
        ctag = block // cache.sets
        ctags = cache._tags
        cstats = cache.stats
        for i in range(base, base + ways):
            if ctags[i] == ctag:
                cache._lru[i] = clock
                cstats.write_hits += 1
                break
        else:
            cstats.write_misses += 1
        stall = self.write_buffer.submit(now)
        self.sbi.write_longword()
        self.physical.write(pa, size, value & ((1 << (8 * size)) - 1))
        return stall

    @staticmethod
    def _longword_pieces(va: int, size: int):
        """Split [va, va+size) at longword boundaries (physical ref units)."""
        pieces = []
        cursor = va
        remaining = size
        while remaining:
            take = min(remaining, 4 - (cursor % 4))
            pieces.append((cursor, take))
            cursor += take
            remaining -= take
        return pieces

    def read(self, va: int, size: int, now: int = 0, stream: str = "d") -> ReadOutcome:
        """D-stream read of ``size`` bytes at virtual address ``va``.

        Raises :class:`TBMiss` (for the EBOX's microtrap) before any
        timing side effects, so the retry after the fill repeats cleanly.
        """
        if self.trace_hook is not None:
            self.trace_hook("dread", va)
        if 0 < size and size + (va & 3) <= 4:
            # Aligned single-longword piece (the overwhelmingly common
            # reference): one page, one translation, one cache lookup —
            # identical traffic and counters to the general path below,
            # without the piece/page bookkeeping structures.
            pa = self.tb.translate(va, write=False, stream=stream)
            stall = 0
            misses = 0
            if not self.cache.read(pa, stream=stream):
                misses = 1
                stall = self.write_buffer.busy_cycles_remaining(now)
                stall += self.sbi.read_block(now + stall)
                if self.tracer is not None:
                    self.tracer.instant(
                        "MEM", now, "cache read miss", {"va": va, "misses": 1}
                    )
            return ReadOutcome(
                value=self.physical.read(pa, size),
                physical_refs=1,
                cache_misses=misses,
                stall_cycles=stall,
                unaligned=False,
            )
        pieces = self._longword_pieces(va, size)
        # Translate every page touched first: a TB miss must abort the
        # reference before cache state changes.
        pages = sorted({piece_va & ~(PAGE_SIZE - 1) for piece_va, _ in pieces})
        translations = {}
        for page_va in pages:
            pa_page = self.translate(page_va, write=False, stream=stream)
            translations[page_va] = pa_page & ~(PAGE_SIZE - 1)

        stall = 0
        misses = 0
        value = 0
        shift = 0
        for piece_va, take in pieces:
            page_va = piece_va & ~(PAGE_SIZE - 1)
            pa = translations[page_va] | (piece_va & (PAGE_SIZE - 1))
            if not self.cache.read(pa, stream=stream):
                misses += 1
                # Memory is a single resource: a miss arriving while the
                # write buffer is still draining its write-through
                # transaction queues behind it (the write-heavy design
                # makes this common and lengthens average read stalls
                # beyond the 6-cycle "simplest case").
                stall += self.write_buffer.busy_cycles_remaining(now + stall)
                stall += self.sbi.read_block(now + stall)
            value |= self.physical.read(pa, take) << shift
            shift += 8 * take
        unaligned = size <= 4 and len(pieces) > 1
        if unaligned:
            self.alignment.unaligned_reads += 1
        if misses and self.tracer is not None:
            self.tracer.instant(
                "MEM", now, "cache read miss", {"va": va, "misses": misses}
            )
        return ReadOutcome(
            value=value,
            physical_refs=len(pieces),
            cache_misses=misses,
            stall_cycles=stall,
            unaligned=unaligned,
        )

    def write(self, va: int, size: int, value: int, now: int = 0) -> WriteOutcome:
        """D-stream write-through of ``size`` bytes at ``va``."""
        if self.trace_hook is not None:
            self.trace_hook("write", va)
        if 0 < size and size + (va & 3) <= 4:
            # Aligned single-longword piece: mirror of the read fast path.
            pa = self.tb.translate(va, write=True, stream="d")
            hits = 1 if self.cache.write(pa) else 0
            stall = self.write_buffer.submit(now)
            self.sbi.write_longword()
            self.physical.write(pa, size, value & ((1 << (8 * size)) - 1))
            return WriteOutcome(
                physical_refs=1, cache_hits=hits, stall_cycles=stall, unaligned=False
            )
        pieces = self._longword_pieces(va, size)
        pages = sorted({piece_va & ~(PAGE_SIZE - 1) for piece_va, _ in pieces})
        translations = {}
        for page_va in pages:
            pa_page = self.translate(page_va, write=True, stream="d")
            translations[page_va] = pa_page & ~(PAGE_SIZE - 1)

        stall = 0
        hits = 0
        shift = 0
        for piece_va, take in pieces:
            page_va = piece_va & ~(PAGE_SIZE - 1)
            pa = translations[page_va] | (piece_va & (PAGE_SIZE - 1))
            if self.cache.write(pa):
                hits += 1
            stall += self.write_buffer.submit(now + stall)
            self.sbi.write_longword()
            self.physical.write(pa, take, (value >> shift) & ((1 << (8 * take)) - 1))
            shift += 8 * take
        unaligned = size <= 4 and len(pieces) > 1
        if unaligned:
            self.alignment.unaligned_writes += 1
        return WriteOutcome(
            physical_refs=len(pieces),
            cache_hits=hits,
            stall_cycles=stall,
            unaligned=unaligned,
        )

    # -- physical references (PCB access via PCBB bypasses the TB) ---------

    def read_physical(self, pa: int, size: int, now: int = 0) -> ReadOutcome:
        """A physically-addressed D-stream read (SVPCTX/LDPCTX traffic)."""
        stall = 0
        misses = 0
        value = 0
        shift = 0
        for piece_pa, take in self._longword_pieces(pa, size):
            if not self.cache.read(piece_pa, stream="d"):
                misses += 1
                stall += self.sbi.read_block(now + stall)
            value |= self.physical.read(piece_pa, take) << shift
            shift += 8 * take
        return ReadOutcome(
            value=value,
            physical_refs=1,
            cache_misses=misses,
            stall_cycles=stall,
            unaligned=False,
        )

    def write_physical(self, pa: int, size: int, value: int, now: int = 0) -> WriteOutcome:
        """A physically-addressed write-through (SVPCTX traffic)."""
        stall = 0
        hits = 0
        shift = 0
        for piece_pa, take in self._longword_pieces(pa, size):
            if self.cache.write(piece_pa):
                hits += 1
            stall += self.write_buffer.submit(now + stall)
            self.sbi.write_longword()
            self.physical.write(piece_pa, take, (value >> shift) & ((1 << (8 * take)) - 1))
            shift += 8 * take
        return WriteOutcome(
            physical_refs=1, cache_hits=hits, stall_cycles=stall, unaligned=False
        )

    # -- I-stream references ----------------------------------------------

    def istream_fetch(self, va: int, now: Optional[int] = None):
        """One IB reference: fetch the longword containing ``va``.

        Returns ``(value, cache_hit, tb_miss, fill_cycles)``.  Unlike
        EBOX references, an I-stream TB miss does *not* microtrap — it
        just sets a flag the EBOX discovers when it runs out of IB bytes
        (Section 2.1).  A miss here therefore returns a tb_miss tuple
        instead of raising.  On a cache miss ``fill_cycles`` is the SBI
        transaction time including any queueing behind concurrent
        traffic.
        """
        aligned = va & ~3
        if self.trace_hook is not None:
            self.trace_hook("iread", aligned)
        # TB tag check, cache way scan and the longword load flattened
        # over the dense tables — this is the prefetcher's once-or-more
        # per instruction call, the hottest body in the simulator.  Every
        # counter moves exactly as the translate()/cache.read() calls it
        # replaces moved them.
        tb = self.tb
        vpn = (aligned & 0x3FFFFFFF) >> PAGE_SHIFT
        top = (aligned >> 30) & 3
        if top >= 2:
            index = (vpn & tb._index_mask) + tb.half_entries
            tag = (vpn >> tb._index_bits) << 2 | 2
        else:
            index = vpn & tb._index_mask
            tag = (vpn >> tb._index_bits) << 2 | top
        tstats = tb.stats
        if tb._tags[index] != tag:
            tstats.misses += 1
            tstats.i_misses += 1
            return _ISTREAM_TB_MISS
        tstats.hits += 1
        pa = (tb._pfns[index] << PAGE_SHIFT) | (aligned & (PAGE_SIZE - 1))
        cache = self.cache
        clock = cache._clock + 1
        cache._clock = clock
        block = pa // cache.block_size
        ways = cache.ways
        base = (block % cache.sets) * ways
        ctag = block // cache.sets
        ctags = cache._tags
        cstats = cache.stats
        hit = False
        for i in range(base, base + ways):
            if ctags[i] == ctag:
                cache._lru[i] = clock
                cstats.read_hits += 1
                cstats.i_read_hits += 1
                hit = True
                break
        if hit:
            fill = 0
        else:
            cstats.read_misses += 1
            cstats.i_read_misses += 1
            lru = cache._lru
            victim = base
            least = lru[base]
            for i in range(base + 1, base + ways):
                if lru[i] < least:
                    least = lru[i]
                    victim = i
            ctags[victim] = ctag
            lru[victim] = clock
            fill = self.sbi.read_block(now)
        physical = self.physical
        mem32 = physical._mem32
        if mem32 is not None and pa + 4 <= physical.size:
            value = mem32[pa >> 2]
        else:
            value = physical.read(pa, 4)
        return IStreamOutcome(value, hit, False, fill)

    def istream_page_valid(self, va: int) -> bool:
        """Whether the page holding ``va`` is mapped (IB prefetch guard)."""
        try:
            return self.pte_lookup(va & ~3).valid
        except PageFault:
            return False

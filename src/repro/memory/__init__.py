"""The VAX-11/780 memory subsystem.

Wires together the pieces of Figure 1's right-hand side: virtual addresses
pass through the Translation Buffer, physical addresses access the
write-through data cache, misses travel over the SBI to main memory, and
data writes drain through the single-longword write buffer.  Each piece
reports the implementation events (Section 4 of the paper) the analysis
layer aggregates: TB misses, cache misses, stall cycles, unaligned
references.
"""

from repro.memory.physical import PhysicalMemory
from repro.memory.pagetable import PageTable, PageTableEntry, PAGE_SIZE
from repro.memory.tb import TranslationBuffer, TBMiss
from repro.memory.cache import Cache, CacheStats
from repro.memory.write_buffer import WriteBuffer
from repro.memory.sbi import SBI
from repro.memory.subsystem import (
    MemorySubsystem,
    PageFault,
    ReadOutcome,
    WriteOutcome,
    READ_MISS_STALL_CYCLES,
)

__all__ = [
    "PhysicalMemory",
    "PageTable",
    "PageTableEntry",
    "PAGE_SIZE",
    "TranslationBuffer",
    "TBMiss",
    "Cache",
    "CacheStats",
    "WriteBuffer",
    "SBI",
    "MemorySubsystem",
    "PageFault",
    "ReadOutcome",
    "WriteOutcome",
    "READ_MISS_STALL_CYCLES",
]

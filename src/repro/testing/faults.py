"""Deterministic fault injection for the engine's recovery paths.

The measurement infrastructure earns trust the way the paper's monitor
did: by surviving its own faults.  nanoBench-style validation work makes
the same point for modern microbenchmarks — recovery code that is never
exercised is recovery code that does not work.  This module lets tests
(and the CI chaos job) *deterministically* break the engine at named
sites — worker crashes, hangs, corrupted cache objects, snapshot restore
failures — and assert that the recovered run is bit-identical to an
undisturbed one.

Design constraints, in order:

* **Disarmed is free.**  Every injection site calls :func:`fire` /
  :func:`corrupt_bytes`, which returns immediately unless the
  ``REPRO_FAULTS`` environment variable carries a plan.  Production runs
  never pay more than one dict lookup.
* **Process-safe.**  Plans propagate to pool workers through the
  environment (inherited on fork and spawn alike), and occurrence
  budgets ("crash the first two times only") are claimed through
  ``O_CREAT | O_EXCL`` marker files in a shared ``state_dir`` — the same
  site firing from four workers at once still fires exactly ``times``
  times.
* **Deterministic.**  A rule either always matches a ``(site, key)``
  pair or gates on a seeded hash of it (``probability``); no wall clock,
  no per-process RNG state.  Re-running the same plan against the same
  engine run injects the same faults.

Sites currently instrumented (see the callers for exact keys):

========================  ====================================================
``worker``                :func:`repro.core.engine._execute_spec_guarded`,
                          keyed by spec name — ``raise``/``crash``/``hang``
``shard.task``            sharded pool worker entry, keyed ``<spec>@<start>``
``shard.measure``         every measured shard span (chain *and* workers),
                          keyed ``<spec>@<start>``
``cache.get``             :meth:`repro.core.runcache.RunCache.get` — corrupt
                          the bytes read back (``truncate``/``bitflip``)
``cache.write``           mid-write inside ``RunCache._write_atomic``, keyed
                          by destination path — ``raise`` simulates a full
                          disk / I/O error between write and rename
``cache.stored``          just after a successful put — corrupt the object
                          *on disk* (the bit-rot simulation)
``snapshot.restore``      :func:`repro.core.snapshot.restore`, keyed by the
                          snapshot digest — ``raise`` surfaces as a
                          :class:`~repro.core.snapshot.SnapshotError`
``costs.skew``            :meth:`EBox._bind_transients` via :func:`cost_skew`
                          — ``skew`` makes the micro-routine named by
                          ``match`` overcharge compute cycles (the model
                          error ``repro validate`` exists to refute)
========================  ====================================================

Keep ``hang`` durations short (a couple of seconds): a timed-out pool
worker finishes its sleep in the background before exiting.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from contextlib import contextmanager
from dataclasses import asdict, dataclass, field
from typing import List, Optional

#: The environment variable a serialized plan travels in.
FAULTS_ENV = "REPRO_FAULTS"

#: Exit code a ``crash`` injection kills the worker process with.
CRASH_EXIT_CODE = 70

#: Actions that raise/kill/sleep at a site (handled by :func:`fire`).
DISRUPT_ACTIONS = ("raise", "crash", "hang")

#: Actions that damage payload bytes (handled by :func:`corrupt_bytes`).
CORRUPT_ACTIONS = ("truncate", "bitflip")

#: Actions that damage counter banks (handled by :func:`corrupt_counts`):
#: ``miscount`` credits phantom cycles to a histogram bucket at readout,
#: the lab accident the invariant checker (repro.obs.invariants) exists
#: to catch.  Documented site: ``monitor.dump`` (key ``board``).
COUNT_ACTIONS = ("miscount",)

#: Actions that perturb the cycle *model* itself (handled by
#: :func:`cost_skew`): ``skew`` makes one micro-routine charge extra
#: compute cycles per visit.  Documented site: ``costs.skew``, where the
#: rule's ``match`` names the victim routine (e.g. ``spec1.register``).
#: Unlike ``miscount`` this corrupts no instrument — every identity in
#: ``repro check`` still holds, because the cycles are honestly counted;
#: only the refutation suite (``repro validate``), which knows what the
#: charge *should* be, can catch it.  That asymmetry is the point.
MODEL_ACTIONS = ("skew",)

#: The site :func:`cost_skew` answers for.
COSTS_SKEW_SITE = "costs.skew"


class InjectedFault(RuntimeError):
    """The default exception an armed ``raise`` rule throws."""


class FaultPlanError(ValueError):
    """A plan is malformed or cannot be installed as specified."""


@dataclass(frozen=True)
class FaultRule:
    """One injection: fire ``action`` at ``site`` for matching keys.

    ``match`` is a substring filter on the site key (``"*"`` matches
    everything).  ``times`` caps total firings per ``(site, key)`` pair
    across *all* processes (negative = unlimited).  ``probability``
    gates on a seeded hash of the key, so the same plan always picks the
    same victims.  ``seconds`` is the sleep for ``hang``.
    """

    site: str
    action: str
    match: str = "*"
    times: int = 1
    probability: float = 1.0
    seconds: float = 0.0

    def __post_init__(self):
        known = DISRUPT_ACTIONS + CORRUPT_ACTIONS + COUNT_ACTIONS + MODEL_ACTIONS
        if self.action not in known:
            raise FaultPlanError(
                "unknown fault action {!r} (know {})".format(
                    self.action, ", ".join(known)
                )
            )

    def matches(self, key: str) -> bool:
        return self.match == "*" or self.match in key


@dataclass
class FaultPlan:
    """A set of rules plus the state shared by every process.

    ``state_dir`` holds the occurrence marker files; it is required as
    soon as any rule has a finite ``times`` budget.  ``coordinator_pid``
    is stamped by :meth:`install` so a ``crash`` rule firing in the
    coordinating process degrades to ``raise`` instead of killing the
    whole run.
    """

    rules: List[FaultRule] = field(default_factory=list)
    seed: int = 0
    state_dir: str = ""
    coordinator_pid: int = 0

    def to_json(self) -> str:
        return json.dumps(
            {
                "seed": self.seed,
                "state_dir": self.state_dir,
                "coordinator_pid": self.coordinator_pid,
                "rules": [asdict(rule) for rule in self.rules],
            },
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, raw: str) -> "FaultPlan":
        try:
            payload = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise FaultPlanError("fault plan is not valid JSON: {}".format(exc))
        return cls(
            rules=[FaultRule(**rule) for rule in payload.get("rules", [])],
            seed=payload.get("seed", 0),
            state_dir=payload.get("state_dir", ""),
            coordinator_pid=payload.get("coordinator_pid", 0),
        )

    def install(self) -> "FaultPlan":
        """Arm the plan for this process and every future child."""
        if any(rule.times >= 0 for rule in self.rules) and not self.state_dir:
            raise FaultPlanError(
                "rules with a finite 'times' budget need a shared state_dir "
                "to count occurrences across processes"
            )
        if self.state_dir:
            os.makedirs(self.state_dir, exist_ok=True)
        if not self.coordinator_pid:
            self.coordinator_pid = os.getpid()
        os.environ[FAULTS_ENV] = self.to_json()
        _reset_cache()
        return self

    @contextmanager
    def active(self):
        """``with plan.active():`` — install, then always disarm."""
        self.install()
        try:
            yield self
        finally:
            uninstall()


def uninstall() -> None:
    """Disarm whatever plan is installed in this process."""
    os.environ.pop(FAULTS_ENV, None)
    _reset_cache()


# Parsing the env JSON on every fire would be measurable; cache keyed by
# the raw string so a re-install (or a worker inheriting a plan) parses
# exactly once per process.
_cache_raw: Optional[str] = None
_cache_plan: Optional[FaultPlan] = None


def _reset_cache() -> None:
    global _cache_raw, _cache_plan
    _cache_raw = None
    _cache_plan = None


def active_plan() -> Optional[FaultPlan]:
    """The installed plan, or None (the overwhelmingly common case)."""
    raw = os.environ.get(FAULTS_ENV)
    if not raw:
        return None
    global _cache_raw, _cache_plan
    if raw != _cache_raw:
        _cache_raw, _cache_plan = raw, FaultPlan.from_json(raw)
    return _cache_plan


def _seeded_gate(plan: FaultPlan, rule_index: int, site: str, key: str, probability: float) -> bool:
    """Deterministic probability gate: same plan, same victims."""
    if probability >= 1.0:
        return True
    if probability <= 0.0:
        return False
    blob = "{}|{}|{}|{}".format(plan.seed, rule_index, site, key).encode("utf-8")
    draw = int.from_bytes(hashlib.sha256(blob).digest()[:8], "big") / float(1 << 64)
    return draw < probability


def _claim_occurrence(plan: FaultPlan, rule_index: int, site: str, key: str, times: int) -> bool:
    """Atomically claim one of the rule's ``times`` firings for this
    ``(site, key)`` pair; False once the budget is spent."""
    if times < 0:
        return True
    if times == 0:
        return False
    digest = hashlib.sha256("{}|{}".format(site, key).encode("utf-8")).hexdigest()[:16]
    for occurrence in range(times):
        marker = os.path.join(
            plan.state_dir, "r{}-{}-{}".format(rule_index, digest, occurrence)
        )
        try:
            handle = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            continue
        os.close(handle)
        return True
    return False


def _armed_rules(site: str, key: str, actions):
    plan = active_plan()
    if plan is None:
        return plan, ()
    hits = []
    for index, rule in enumerate(plan.rules):
        if rule.site != site or rule.action not in actions:
            continue
        if not rule.matches(key):
            continue
        if not _seeded_gate(plan, index, site, key, rule.probability):
            continue
        if not _claim_occurrence(plan, index, site, key, rule.times):
            continue
        hits.append(rule)
    return plan, hits


def fire(site: str, key: str = "", raiser=None) -> None:
    """Injection point for disruptive faults; a no-op when disarmed.

    ``raiser`` lets a site surface the injection as the exception type
    its real failure mode would produce (e.g. ``SnapshotError``), so the
    recovery code under test cannot tell injected faults from real ones.
    """
    plan, hits = _armed_rules(site, key, DISRUPT_ACTIONS)
    for rule in hits:
        if rule.action == "hang":
            time.sleep(rule.seconds)
            continue
        if rule.action == "crash" and os.getpid() != plan.coordinator_pid:
            os._exit(CRASH_EXIT_CODE)
        # crash in the coordinator itself degrades to raise: killing the
        # coordinating process would take the test harness down with it.
        make = raiser if raiser is not None else InjectedFault
        raise make("injected fault at site {!r} (key {!r})".format(site, key))


def corrupt_bytes(site: str, key: str, data: bytes) -> bytes:
    """Damage ``data`` per the armed corruption rules; identity when
    disarmed.  ``truncate`` halves the payload, ``bitflip`` flips one
    bit in the middle — both defeat any honest content digest."""
    _, hits = _armed_rules(site, key, CORRUPT_ACTIONS)
    for rule in hits:
        if not data:
            continue
        if rule.action == "truncate":
            data = data[: len(data) // 2]
        elif rule.action == "bitflip":
            middle = len(data) // 2
            data = data[:middle] + bytes([data[middle] ^ 0x01]) + data[middle + 1 :]
    return data


def corrupt_counts(site: str, key: str, counts, stalled_counts) -> int:
    """Damage a histogram readout in place per the armed ``miscount``
    rules; a no-op (returning 0) when disarmed.

    The injected accident is a deterministic one: phantom *stalled*
    cycles credited to the busiest non-stalled bucket — on a real
    readout that bucket is the opcode-decode dispatch, a compute-slot
    microinstruction that can never legitimately land in the stalled
    bank.  The data reduction will dutifully add those cycles to the
    total but can classify them into no Table 8 column, which is
    exactly the inconsistency counter-identity checking exists to trip.
    Returns the number of phantom cycles injected.
    """
    plan, hits = _armed_rules(site, key, COUNT_ACTIONS)
    injected = 0
    for _rule in hits:
        if not counts:
            continue
        bucket = max(range(len(counts)), key=counts.__getitem__)
        phantom = 1000 + (plan.seed % 1000)
        stalled_counts[bucket] += phantom
        injected += phantom
    return injected


def cost_skew() -> Optional[tuple]:
    """The armed cycle-model perturbation, or None (the common case).

    Resolved once per machine binding (:meth:`EBox._bind_transients`),
    not per cycle: returns ``(routine_name, extra_cycles)`` when a
    ``skew`` rule is armed at the ``costs.skew`` site.  The rule's
    ``match`` field names the skewed micro-routine and its occurrence
    budget counts machine *bindings* — use ``times=-1`` to skew every
    machine a test constructs (the refutation runner builds one per
    compile mode).  ``extra_cycles`` is derived from the plan seed so
    different plans exercise different magnitudes deterministically.
    """
    plan = active_plan()
    if plan is None:
        return None
    for index, rule in enumerate(plan.rules):
        if rule.site != COSTS_SKEW_SITE or rule.action not in MODEL_ACTIONS:
            continue
        if rule.match == "*":
            raise FaultPlanError(
                "a costs.skew rule must name the victim micro-routine "
                "in match= (e.g. 'spec1.register')"
            )
        if not _seeded_gate(plan, index, rule.site, rule.match, rule.probability):
            continue
        if not _claim_occurrence(plan, index, rule.site, rule.match, rule.times):
            continue
        return rule.match, 1 + plan.seed % 4
    return None


def corrupt_file(site: str, key: str, path: str) -> bool:
    """Apply corruption rules to a file in place (the bit-rot
    simulation).  Returns True when the file was actually damaged."""
    plan = active_plan()
    if plan is None:
        return False
    try:
        with open(path, "rb") as handle:
            original = handle.read()
    except OSError:
        return False
    damaged = corrupt_bytes(site, key, original)
    if damaged == original:
        return False
    with open(path, "wb") as handle:
        handle.write(damaged)
    return True

"""Test-support machinery that ships with the package.

:mod:`repro.testing.faults` is the deterministic fault-injection
harness the resilience tests (and the CI chaos job) drive the engine's
recovery paths with.  Nothing in here runs unless a fault plan is
explicitly installed — every injection site costs one environment-dict
lookup when disarmed.
"""

from repro.testing import faults

__all__ = ["faults"]

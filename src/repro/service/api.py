"""The service wire format: specs, runs and errors as plain JSON.

Everything the experiment service ships over HTTP round-trips through
this module.  The conversions are *lossless for declarative payloads*:
a :class:`~repro.core.executor.RunSpec` built from ``MachineConfig``
fields, an :class:`~repro.core.executor.EngineRun` with its result,
sparse histogram and manifest — all survive ``to`` → ``json.dumps`` →
``json.loads`` → ``from`` bit-identically, which is what lets the
concurrent-client tests compare a served result byte-for-byte against
an in-process golden run.

Two shapes need care beyond ``dataclasses.asdict``:

* ``Counter`` objects with tuple keys (the specifier table is keyed by
  ``(position_class, row)``) — JSON objects only take string keys, so
  counters travel as ``[[key, count], ...]`` pairs with tuple keys
  spelled as lists;
* the sparse histogram banks, ``{bucket: count}`` with integer keys —
  same treatment.

``configure`` callables do **not** cross the HTTP boundary: a spec
carrying one is rejected at encode time (:class:`ApiError`).  Ablations
submitted to the service must be declarative ``MachineConfig`` values,
exactly the restriction the process-pool boundary already imposes in
spirit (a closure would also defeat the scheduler's dedupe, whose spec
identity is the config hash).

Errors travel as the envelope :func:`error_envelope` builds —
:class:`~repro.core.executor.EngineError` keeps its constructor extras
(spec name, worker traceback, per-shard status) through the JSON
round-trip via its own ``to_payload``/``from_payload``.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import asdict
from typing import Dict, List, Optional, Tuple

from repro.core.executor import EngineError, EngineRun, MachineConfig, RunSpec


class ApiError(ValueError):
    """A payload the wire format cannot (or refuses to) carry."""


# ----------------------------------------------------------------------
# specs
# ----------------------------------------------------------------------


def spec_to_payload(spec: RunSpec) -> Dict:
    """A spec as JSON — declarative fields only."""
    if spec.configure is not None:
        raise ApiError(
            "spec {!r} carries a configure callable; the service API only"
            " accepts declarative MachineConfig ablations".format(spec.name)
        )
    return {
        "workload": spec.workload,
        "instructions": spec.instructions,
        "warmup_instructions": spec.warmup_instructions,
        "process_count": spec.process_count,
        "seed_offset": spec.seed_offset,
        "config": None if spec.config is None else asdict(spec.config),
        "label": spec.label,
    }


def spec_from_payload(payload: Dict) -> RunSpec:
    if not isinstance(payload, dict):
        raise ApiError("spec payload must be an object, got {!r}".format(payload))
    if "workload" not in payload:
        raise ApiError("spec payload is missing 'workload'")
    unknown = set(payload) - {
        "workload", "instructions", "warmup_instructions", "process_count",
        "seed_offset", "config", "label",
    }
    if unknown:
        raise ApiError(
            "spec payload has unknown fields: {}".format(", ".join(sorted(unknown)))
        )
    config = payload.get("config")
    if config is not None:
        bad = set(config) - set(MachineConfig.__dataclass_fields__)
        if bad:
            raise ApiError(
                "config payload has unknown fields: {}".format(", ".join(sorted(bad)))
            )
        config = MachineConfig(**config)
    return RunSpec(
        workload=payload["workload"],
        instructions=payload.get("instructions", 30_000),
        warmup_instructions=payload.get("warmup_instructions", 3_000),
        process_count=payload.get("process_count"),
        seed_offset=payload.get("seed_offset", 0),
        config=config,
        label=payload.get("label"),
    )


# ----------------------------------------------------------------------
# counters / histogram banks (non-string keys)
# ----------------------------------------------------------------------


def _counter_to_pairs(counter: Counter) -> List:
    pairs = []
    for key in sorted(counter, key=repr):
        value = counter[key]
        pairs.append([list(key) if isinstance(key, tuple) else key, value])
    return pairs


def _counter_from_pairs(pairs: List) -> Counter:
    counter: Counter = Counter()
    for key, value in pairs:
        counter[tuple(key) if isinstance(key, list) else key] = value
    return counter


def _sparse_to_pairs(sparse: Dict[int, int]) -> List:
    return [[bucket, count] for bucket, count in sorted(sparse.items())]


def _sparse_from_pairs(pairs: List) -> Dict[int, int]:
    return {int(bucket): int(count) for bucket, count in pairs}


# ----------------------------------------------------------------------
# results
# ----------------------------------------------------------------------

_COUNTER_FIELDS = (
    "opcode_counts",
    "branch_executed",
    "branch_taken",
    "specifier_counts",
    "indexed_specifiers",
    "reads_by_source",
    "writes_by_source",
)


def _events_to_payload(events) -> Dict:
    payload = {}
    for name in events.__dataclass_fields__:
        value = getattr(events, name)
        payload[name] = (
            _counter_to_pairs(value) if name in _COUNTER_FIELDS else value
        )
    return payload


def _events_from_payload(payload: Dict):
    from repro.cpu.events import EventCounters

    events = EventCounters()
    for name, value in payload.items():
        setattr(
            events,
            name,
            _counter_from_pairs(value) if name in _COUNTER_FIELDS else value,
        )
    return events


def result_to_payload(result) -> Dict:
    """An :class:`~repro.core.experiment.ExperimentResult` as JSON."""
    reduction = result.reduction
    return {
        "name": result.name,
        "reduction": {
            "matrix": reduction.matrix,
            "instructions": reduction.instructions,
            "total_cycles": reduction.total_cycles,
            "routine_cycles": {
                name: list(cycles)
                for name, cycles in reduction.routine_cycles.items()
            },
            # reduce_histogram links the run's event counters into the
            # reduction; record whether that link exists so the decode
            # side can restore the same object graph.
            "events_linked": reduction.events is not None,
        },
        "events": _events_to_payload(result.events),
        "stats": asdict(result.stats),
    }


def result_from_payload(payload: Dict):
    from repro.core.experiment import ExperimentResult, MachineStats
    from repro.core.reduction import Reduction

    events = _events_from_payload(payload["events"])
    encoded = payload["reduction"]
    reduction = Reduction(
        matrix=encoded["matrix"],
        instructions=encoded["instructions"],
        total_cycles=encoded["total_cycles"],
        routine_cycles={
            name: tuple(cycles)
            for name, cycles in encoded["routine_cycles"].items()
        },
        events=events if encoded.get("events_linked") else None,
    )
    return ExperimentResult(
        name=payload["name"],
        reduction=reduction,
        events=events,
        stats=MachineStats(**payload["stats"]),
    )


# ----------------------------------------------------------------------
# runs
# ----------------------------------------------------------------------


def run_to_payload(run: EngineRun) -> Dict:
    counts, stalled = run.histogram
    return {
        "spec": spec_to_payload(run.spec),
        "result": result_to_payload(run.result),
        "histogram": {
            "counts": _sparse_to_pairs(counts),
            "stalled": _sparse_to_pairs(stalled),
        },
        "wall_seconds": run.wall_seconds,
        "manifest": None if run.manifest is None else run.manifest.to_dict(),
        "metrics": run.metrics,
        "shard_count": run.shard_count,
        "shards_from_cache": run.shards_from_cache,
    }


def run_from_payload(payload: Dict) -> EngineRun:
    from repro.obs.provenance import RunManifest

    manifest = payload.get("manifest")
    return EngineRun(
        spec=spec_from_payload(payload["spec"]),
        result=result_from_payload(payload["result"]),
        histogram=(
            _sparse_from_pairs(payload["histogram"]["counts"]),
            _sparse_from_pairs(payload["histogram"]["stalled"]),
        ),
        wall_seconds=payload["wall_seconds"],
        manifest=None if manifest is None else RunManifest(**manifest),
        metrics=payload.get("metrics"),
        shard_count=payload.get("shard_count", 1),
        shards_from_cache=payload.get("shards_from_cache", 0),
    )


def run_summary(run: EngineRun, digest: Optional[str] = None) -> Dict:
    """The job-record view of one run: provenance, not payload."""
    manifest = run.manifest
    return {
        "name": run.spec.name,
        "digest": digest,
        "wall_seconds": run.wall_seconds,
        "instructions": run.result.instructions,
        "cpi": run.result.cpi,
        "shard_count": run.shard_count,
        "shards_from_cache": run.shards_from_cache,
        "attached_to": None if manifest is None else manifest.attached_to,
        "resumed_from": None if manifest is None else manifest.resumed_from,
        "attempts": 1 if manifest is None else manifest.attempts,
    }


# ----------------------------------------------------------------------
# errors
# ----------------------------------------------------------------------


def error_envelope(error: BaseException) -> Dict:
    """Any exception as a JSON error body; EngineError keeps its extras."""
    if isinstance(error, EngineError):
        return error.to_payload()
    return {
        "type": type(error).__name__,
        "message": str(error),
        "args": [repr(arg) for arg in error.args],
    }


def error_from_envelope(payload: Dict) -> BaseException:
    """Reconstruct the server-side failure; EngineError round-trips."""
    if payload.get("type") == "EngineError":
        return EngineError.from_payload(payload)
    return RuntimeError(
        "{}: {}".format(payload.get("type", "Error"), payload.get("message", ""))
    )

"""The service client: ``repro submit`` / ``repro poll`` over stdlib HTTP.

A thin, dependency-free wrapper around :mod:`http.client` for the
experiment service's JSON API.  Every method opens one short-lived
connection (the server closes after each response), decodes the JSON
body, and raises :class:`ClientError` for non-2xx statuses — with the
server's error envelope attached, so an
:class:`~repro.core.executor.EngineError` that killed a job on the
server reconstructs client-side with its spec name, worker traceback
and shard status intact (:meth:`ClientError.remote_error`).
"""

from __future__ import annotations

import json
import time
from http.client import HTTPConnection
from typing import Dict, List, Optional

from repro.service import api


class ClientError(Exception):
    """A non-2xx response from the service."""

    def __init__(self, status: int, payload: Dict):
        super().__init__(
            "service returned {}: {}".format(
                status, payload.get("error", payload) if isinstance(payload, dict)
                else payload
            )
        )
        self.status = status
        self.payload = payload if isinstance(payload, dict) else {"error": payload}

    def remote_error(self) -> Optional[BaseException]:
        """The server-side exception, reconstructed from the envelope
        (an ``EngineError`` keeps its constructor extras)."""
        envelope = self.payload.get("error")
        if isinstance(envelope, dict) and "type" in envelope:
            return api.error_from_envelope(envelope)
        return None


class ServiceClient:
    """One experiment-service endpoint, e.g. ``http://127.0.0.1:8765``."""

    def __init__(self, url: str = "http://127.0.0.1:8765", timeout: float = 60.0):
        if "//" in url:
            url = url.split("//", 1)[1]
        self.netloc = url.rstrip("/")
        self.timeout = timeout

    def request(self, method: str, path: str, payload: Optional[Dict] = None) -> Dict:
        connection = HTTPConnection(self.netloc, timeout=self.timeout)
        try:
            body = None if payload is None else json.dumps(payload).encode("utf-8")
            headers = {"Content-Type": "application/json"} if body else {}
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            raw = response.read()
            try:
                decoded = json.loads(raw.decode("utf-8")) if raw else {}
            except (UnicodeDecodeError, json.JSONDecodeError):
                decoded = {"error": raw.decode("latin-1", "replace")}
            if response.status >= 400:
                raise ClientError(response.status, decoded)
            return decoded
        finally:
            connection.close()

    # -- the API, one method per route -------------------------------------

    def healthz(self) -> Dict:
        return self.request("GET", "/healthz")

    def stats(self) -> Dict:
        return self.request("GET", "/stats")

    def submit_sweep(self, specs: List, on_error: str = "raise") -> Dict:
        """Submit a sweep of :class:`~repro.core.executor.RunSpec` values
        (or already-encoded spec payloads); returns the acceptance
        record: ``{"job": id, "digests": [...]}``."""
        encoded = [
            spec if isinstance(spec, dict) else api.spec_to_payload(spec)
            for spec in specs
        ]
        return self.request(
            "POST", "/sweeps", {"specs": encoded, "on_error": on_error}
        )

    def job(self, job_id: str) -> Dict:
        return self.request("GET", "/jobs/{}".format(job_id))

    def jobs(self) -> List[Dict]:
        return self.request("GET", "/jobs")["jobs"]

    def wait(self, job_id: str, timeout: float = 600.0, poll: float = 0.05) -> Dict:
        """Poll until the job leaves the queue/running states."""
        deadline = time.monotonic() + timeout
        while True:
            record = self.job(job_id)
            if record["state"] in ("done", "failed"):
                return record
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    "job {} still {} after {}s".format(
                        job_id, record["state"], timeout
                    )
                )
            time.sleep(poll)

    def result_payload(self, digest: str) -> Dict:
        """One completed run as its raw JSON payload."""
        return self.request("GET", "/results/{}".format(digest))

    def result(self, digest: str):
        """One completed run decoded back into an
        :class:`~repro.core.executor.EngineRun`."""
        return api.run_from_payload(self.result_payload(digest))

"""The experiment service: many clients, one scheduler.

``repro serve`` exposes the engine's scheduling layer over a small
HTTP/JSON API so concurrent clients — ``repro submit``, ``repro poll``,
CI smoke jobs, anything that can speak JSON — share one
:class:`~repro.core.scheduler.Scheduler` and therefore one dedupe
domain: overlapping sweeps attach to in-flight work, repeats resolve
from the bounded result index, and whole runs resolve from the
content-addressed cache across restarts.

* :mod:`repro.service.api` — the JSON wire format (specs, runs, error
  envelopes);
* :mod:`repro.service.server` — :class:`ExperimentService`, the asyncio
  job queue and HTTP front end;
* :mod:`repro.service.client` — :class:`ServiceClient`, the stdlib
  ``http.client`` consumer the CLI subcommands use.
"""

from repro.service.client import ClientError, ServiceClient
from repro.service.server import ExperimentService

__all__ = ["ClientError", "ExperimentService", "ServiceClient"]

"""The experiment service: an asyncio job queue over the scheduler.

``repro serve`` runs one :class:`ExperimentService`: a small HTTP/JSON
API (stdlib only — ``asyncio.start_server`` and a minimal HTTP/1.1
reader) in front of one long-lived
:class:`~repro.core.scheduler.Scheduler`.  Sweeps submitted by any
number of concurrent clients funnel through the same scheduler call the
CLI ``composite``/``sweep`` paths use, so a served job is retried,
timed out and fault-reported exactly like a CLI run — one orchestration
code path, not two.

Routes::

    POST /sweeps            {"specs": [...], "on_error": "raise"}
                            -> 202 {"job": "j-000001", "digests": [...]}
    GET  /jobs/{id}         job record: state, per-run summaries, error
    GET  /jobs              every job record, oldest first
    GET  /results/{digest}  one completed run, full JSON payload
    GET  /stats             scheduler occupancy + metric counters + jobs
    GET  /healthz           {"ok": true}

Concurrency model: requests are served on the event loop; each accepted
job goes onto an :class:`asyncio.Queue` drained by ``concurrency``
worker tasks, and each worker hands the blocking scheduler call to a
thread pool (``run_in_executor``).  Dedupe between concurrently-running
jobs is the scheduler's: overlapping digests attach to the in-flight
ticket instead of executing twice, repeat sweeps resolve from the
bounded result index, and (when a cache is configured) whole runs
resolve from the content-addressed :class:`~repro.core.runcache.RunCache`
across server restarts.  A job every one of whose specs attached or
resolved finishes in state ``done`` like any other — its run summaries
carry the ``attached_to``/``resumed_from`` provenance and zero wall
seconds.

The server binds before it accepts (``port=0`` asks the OS for an
ephemeral port, published in :attr:`ExperimentService.port`), and
:meth:`start_in_thread`/:meth:`shutdown` give tests and the CLI clients
a service embedded in their own process.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional

from repro.core.scheduler import Scheduler
from repro.obs.log import get_logger
from repro.service import api

#: Request bodies past this size are refused (413) before parsing.
MAX_BODY_BYTES = 8 * 1024 * 1024

#: Job records kept, oldest evicted first (the run payloads they point
#: at live in the scheduler's own bounded index, not here).
MAX_JOB_RECORDS = 512


class _Job:
    """One submitted sweep and everything a client can ask about it."""

    __slots__ = (
        "id", "specs", "digests", "on_error", "state", "submitted_at",
        "started_at", "finished_at", "runs", "error", "report",
    )

    def __init__(self, job_id: str, specs: List, digests: List[str], on_error: str):
        self.id = job_id
        self.specs = specs
        self.digests = digests
        self.on_error = on_error
        self.state = "queued"
        self.submitted_at = time.time()
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self.runs: List[Dict] = []
        self.error: Optional[Dict] = None
        self.report: Optional[Dict] = None

    def record(self) -> Dict:
        payload = {
            "job": self.id,
            "state": self.state,
            "on_error": self.on_error,
            "digests": self.digests,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "runs": self.runs,
        }
        if self.error is not None:
            payload["error"] = self.error
        if self.report is not None:
            payload["report"] = self.report
        return payload


class ServiceError(Exception):
    """An HTTP-level refusal: carries the status and the JSON body."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status
        self.message = message


class ExperimentService:
    """The asyncio job queue + HTTP front end over one Scheduler."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        scheduler: Optional[Scheduler] = None,
        jobs: int = 1,
        shards: int = 1,
        cache=None,
        policy=None,
        metrics=None,
        concurrency: int = 2,
        result_index_size: int = 256,
    ):
        if metrics is None:
            from repro.obs.metrics import MetricsRegistry

            metrics = MetricsRegistry()
        self.host = host
        self.port = port
        self.metrics = metrics
        self.concurrency = max(1, concurrency)
        self.scheduler = scheduler if scheduler is not None else Scheduler(
            jobs=jobs,
            shards=shards,
            cache=cache,
            policy=policy,
            metrics=metrics,
            result_index_size=result_index_size,
            # run-level cache resolution: dedupe that survives restarts
            run_resolution=cache is not None,
        )
        self._log = get_logger("repro.service")
        self._jobs: "Dict[str, _Job]" = {}
        self._jobs_order: List[str] = []
        self._next_id = 0
        self._jobs_lock = threading.Lock()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._queue: Optional[asyncio.Queue] = None
        self._stop: Optional[asyncio.Event] = None
        self._ready = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._failure: Optional[BaseException] = None

    # -- job bookkeeping ---------------------------------------------------

    def _new_job(self, specs, digests, on_error: str) -> _Job:
        with self._jobs_lock:
            self._next_id += 1
            job = _Job("j-{:06d}".format(self._next_id), specs, digests, on_error)
            self._jobs[job.id] = job
            self._jobs_order.append(job.id)
            while len(self._jobs_order) > MAX_JOB_RECORDS:
                dropped = self._jobs_order.pop(0)
                self._jobs.pop(dropped, None)
            self.metrics.counter(
                "service.jobs.submitted", "sweeps accepted by POST /sweeps"
            ).inc()
        return job

    def job_record(self, job_id: str) -> Optional[Dict]:
        with self._jobs_lock:
            job = self._jobs.get(job_id)
            return None if job is None else job.record()

    def job_records(self) -> List[Dict]:
        with self._jobs_lock:
            return [self._jobs[job_id].record() for job_id in self._jobs_order]

    # -- executing one job -------------------------------------------------

    def _run_job(self, job: _Job) -> None:
        """The blocking body handed to the thread pool: one scheduler
        call, then the job record is rewritten from its outcome."""
        from repro.core.resilience import ResiliencePolicy, SweepResult

        policy = self.scheduler.policy
        if job.on_error == "collect":
            base = policy if policy is not None else ResiliencePolicy()
            policy = ResiliencePolicy(
                retry=base.retry,
                spec_timeout=base.spec_timeout,
                on_error="collect",
                max_pool_respawns=base.max_pool_respawns,
                metrics=base.metrics,
            )
        try:
            outcome = self.scheduler.run_specs(job.specs, policy=policy)
        except Exception as error:  # noqa: BLE001 — every failure becomes JSON
            job.error = api.error_envelope(error)
            job.state = "failed"
            self.metrics.counter(
                "service.jobs.failed", "sweeps that raised instead of finishing"
            ).inc()
            return
        if isinstance(outcome, SweepResult):
            runs = outcome.runs
            job.report = outcome.report.to_dict()
        else:
            runs = outcome
        job.runs = [
            api.run_summary(run, digest)
            for run, digest in zip(runs, job.digests)
            if run is not None
        ]
        job.state = "done"
        self.metrics.counter(
            "service.jobs.completed", "sweeps finished and published"
        ).inc()

    async def _worker(self, executor: ThreadPoolExecutor) -> None:
        assert self._queue is not None
        loop = asyncio.get_running_loop()
        while True:
            job = await self._queue.get()
            job.state = "running"
            job.started_at = time.time()
            try:
                await loop.run_in_executor(executor, self._run_job, job)
            finally:
                job.finished_at = time.time()
                self._queue.task_done()

    # -- HTTP plumbing -----------------------------------------------------

    async def _read_request(self, reader: asyncio.StreamReader):
        head = await reader.readuntil(b"\r\n\r\n")
        request_line, _, header_block = head.partition(b"\r\n")
        try:
            method, target, _version = request_line.decode("latin-1").split(" ", 2)
        except ValueError:
            raise ServiceError(400, "malformed request line")
        headers = {}
        for line in header_block.decode("latin-1").split("\r\n"):
            if ":" in line:
                name, _, value = line.partition(":")
                headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > MAX_BODY_BYTES:
            raise ServiceError(413, "request body too large")
        body = await reader.readexactly(length) if length else b""
        return method.upper(), target.split("?", 1)[0], body

    @staticmethod
    def _respond(writer: asyncio.StreamWriter, status: int, payload: Dict) -> None:
        reasons = {200: "OK", 202: "Accepted", 400: "Bad Request",
                   404: "Not Found", 405: "Method Not Allowed",
                   413: "Payload Too Large", 500: "Internal Server Error"}
        body = json.dumps(payload).encode("utf-8")
        head = (
            "HTTP/1.1 {} {}\r\n"
            "Content-Type: application/json\r\n"
            "Content-Length: {}\r\n"
            "Connection: close\r\n\r\n"
        ).format(status, reasons.get(status, "Status"), len(body))
        writer.write(head.encode("latin-1") + body)

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                method, path, body = await self._read_request(reader)
                status, payload = self._route(method, path, body)
            except ServiceError as refusal:
                status, payload = refusal.status, {"error": refusal.message}
            except (asyncio.IncompleteReadError, asyncio.LimitOverrunError):
                return
            except Exception as error:  # noqa: BLE001 — keep the server up
                status, payload = 500, {"error": repr(error)}
            self._respond(writer, status, payload)
            await writer.drain()
        finally:
            writer.close()

    def _route(self, method: str, path: str, body: bytes):
        if path == "/healthz":
            return 200, {"ok": True}
        if path == "/stats":
            payload = self.scheduler.stats_snapshot()
            with self._jobs_lock:
                payload["jobs"] = {
                    "records": len(self._jobs_order),
                    "queued": self._queue.qsize() if self._queue else 0,
                }
            return 200, payload
        if path == "/sweeps":
            if method != "POST":
                raise ServiceError(405, "POST /sweeps")
            return self._route_submit(body)
        if path == "/jobs":
            return 200, {"jobs": self.job_records()}
        if path.startswith("/jobs/"):
            record = self.job_record(path[len("/jobs/"):])
            if record is None:
                raise ServiceError(404, "no such job")
            return 200, record
        if path.startswith("/results/"):
            digest = path[len("/results/"):]
            run = self.scheduler.result_for(digest)
            if run is None:
                raise ServiceError(404, "no completed run for that digest")
            return 200, api.run_to_payload(run)
        raise ServiceError(404, "unknown route")

    def _route_submit(self, body: bytes):
        from repro.obs.provenance import config_hash

        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ServiceError(400, "body is not valid JSON: {}".format(error))
        if not isinstance(payload, dict) or not isinstance(
            payload.get("specs"), list
        ) or not payload["specs"]:
            raise ServiceError(400, "body must be {\"specs\": [spec, ...]}")
        on_error = payload.get("on_error", "raise")
        if on_error not in ("raise", "collect"):
            raise ServiceError(400, "on_error must be 'raise' or 'collect'")
        try:
            specs = [api.spec_from_payload(item) for item in payload["specs"]]
        except api.ApiError as error:
            raise ServiceError(400, str(error))
        digests = [config_hash(spec) for spec in specs]
        job = self._new_job(specs, digests, on_error)
        self._queue.put_nowait(job)
        self._log.info("job accepted", job=job.id, specs=len(specs))
        return 202, {"job": job.id, "digests": digests}

    # -- lifecycle ---------------------------------------------------------

    async def _main(self, announce=None) -> None:
        self._loop = asyncio.get_running_loop()
        self._queue = asyncio.Queue()
        self._stop = asyncio.Event()
        server = await asyncio.start_server(self._handle, self.host, self.port)
        self.port = server.sockets[0].getsockname()[1]
        executor = ThreadPoolExecutor(
            max_workers=self.concurrency, thread_name_prefix="repro-service"
        )
        workers = [
            asyncio.ensure_future(self._worker(executor))
            for _ in range(self.concurrency)
        ]
        self._log.info(
            "serving", host=self.host, port=self.port, workers=self.concurrency
        )
        if announce is not None:
            announce(self)
        self._ready.set()
        try:
            async with server:
                await self._stop.wait()
        finally:
            for worker in workers:
                worker.cancel()
            executor.shutdown(wait=False)

    def run(self, announce=None) -> None:
        """Serve on the calling thread until interrupted (the CLI path)."""
        try:
            asyncio.run(self._main(announce=announce))
        except KeyboardInterrupt:
            self._log.info("service interrupted")

    def start_in_thread(self, timeout: float = 10.0) -> "ExperimentService":
        """Serve on a daemon thread; returns once the port is bound."""

        def body():
            try:
                asyncio.run(self._main())
            except BaseException as error:  # noqa: BLE001 — surfaced below
                self._failure = error
                self._ready.set()

        self._thread = threading.Thread(target=body, daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout):
            raise RuntimeError("service did not come up within {}s".format(timeout))
        if self._failure is not None:
            raise RuntimeError("service failed to start") from self._failure
        return self

    def shutdown(self, timeout: float = 10.0) -> None:
        if self._loop is not None and self._stop is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop.set)
            except RuntimeError:
                pass  # loop already closed
        if self._thread is not None:
            self._thread.join(timeout)

"""The VAX-11/780 CPU: the three-stage pipeline of Figure 1.

* :mod:`repro.cpu.ibuffer` — I-Fetch stage: the 8-byte Instruction
  Buffer with hardware prefetch (invisible to the micro-PC monitor,
  exactly like the real machine).
* :mod:`repro.cpu.operands` — the I-Decode stage's specifier decoding
  plus the EBOX's specifier-processing microcode model.
* :mod:`repro.cpu.semantics` — execute-phase semantics for every opcode
  in the subset.
* :mod:`repro.cpu.ebox` — the microcoded EBOX: runs instructions,
  charges every cycle to a control-store address, takes microtraps.
* :mod:`repro.cpu.machine` — the assembled machine.
"""

from repro.cpu.ibuffer import InstructionBuffer, IBStats
from repro.cpu.events import EventCounters
from repro.cpu.ebox import EBox, HaltExecution
from repro.cpu.machine import VAX780

__all__ = [
    "InstructionBuffer",
    "IBStats",
    "EventCounters",
    "EBox",
    "HaltExecution",
    "VAX780",
]

"""The EBOX: the 11/780's microcoded execution engine.

Every cycle the EBOX spends is charged to a control-store address and
strobed into the micro-PC monitor, faithfully reproducing the paper's
measurement channel:

* non-stalled microinstruction executions count in the normal bank;
* read- and write-stall cycles count in the *stalled* bank at the address
  of the read/write microinstruction that incurred them (Section 4.3);
* IB stalls are executions of the "insufficient bytes" dispatch target in
  whichever activity requested the bytes;
* a TB miss costs one abort cycle (the microtrap) plus the miss-service
  routine in the memory-management region;
* unaligned references detour through the alignment microcode.

The EBOX is also where instruction semantics happen: specifier processing
reads operands, execute handlers (:mod:`repro.cpu.semantics`) do the
work, and result stores charge the destination specifier's write slot —
"a simple integer Move ... is accomplished entirely by specifier
microcode: first a read, then a write" (Section 3.2).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.isa.datatypes import DataType, f_floating_encode
from repro.isa.opcodes import OPCODES, Opcode, OpcodeGroup
from repro.isa.psl import AccessMode, ProcessorStatus
from repro.isa.registers import Reg, RegisterFile
from repro.isa.specifiers import (
    AccessType,
    AddressingMode,
    OperandSpec,
    TABLE4_ROW_FOR_MODE,
)
from repro.memory.subsystem import MemorySubsystem, PageFault
from repro.memory.tb import TBMiss
from repro.cpu.events import EventCounters
from repro.cpu.ibuffer import InstructionBuffer
from repro.cpu.operands import OperandRef, decode_specifier, expand_float_literal
from repro.ucode.costs import (
    EXCEPTION_ENTRY_COMPUTE_CYCLES,
    EXCEPTION_ENTRY_WRITES,
    INDEX_EXTRA_CYCLES,
    INTERRUPT_ENTRY_COMPUTE_CYCLES,
    INTERRUPT_ENTRY_WRITES,
    SPEC_COSTS,
    TB_MISS_COMPUTE_CYCLES,
    UNALIGNED_EXTRA_CYCLES,
    exec_profile,
)
from repro.ucode.microword import MicroSlot
from repro.ucode.routines import MicrocodeLayout, build_layout

#: Safety valve: a single instruction stalled this long means a modelling
#: bug, not a slow memory.
_STALL_WATCHDOG_CYCLES = 100_000

# Slot indices into Routine.slot_addrs.  The cycle-charging path runs
# once per simulated microcycle; plain ints avoid enum hashing there.
_COMPUTE_A = MicroSlot.COMPUTE_A.value
_COMPUTE_B = MicroSlot.COMPUTE_B.value
_READ = MicroSlot.READ.value
_WRITE = MicroSlot.WRITE.value
_IB_WAIT = MicroSlot.IB_WAIT.value


class HaltExecution(Exception):
    """Raised when the processor halts (HALT opcode or fatal fault)."""


class IllegalInstruction(Exception):
    """An opcode byte with no table entry reached the decoder."""


_DTYPE_SIZE = {
    DataType.BYTE: 1,
    DataType.WORD: 2,
    DataType.LONG: 4,
    DataType.QUAD: 8,
    DataType.F_FLOAT: 4,
    DataType.PACKED: 1,
    DataType.VARIABLE_FIELD: 4,
}

_TABLE5_GROUP_ROW = {
    OpcodeGroup.SIMPLE: "simple",
    OpcodeGroup.FIELD: "field",
    OpcodeGroup.FLOAT: "float",
    OpcodeGroup.CALLRET: "callret",
    OpcodeGroup.SYSTEM: "system",
    OpcodeGroup.CHARACTER: "character",
    OpcodeGroup.DECIMAL: "decimal",
}


class EBox:
    """The microcoded EBOX plus the I-Fetch and I-Decode stages it drives."""

    def __init__(
        self,
        memory: MemorySubsystem,
        layout: Optional[MicrocodeLayout] = None,
        monitor=None,
        events: Optional[EventCounters] = None,
        machine=None,
        tracer=None,
    ):
        self.memory = memory
        self.layout = layout if layout is not None else build_layout()
        self.monitor = monitor  # UPCMonitor or None
        self.events = events if events is not None else EventCounters()
        self.machine = machine  # VAX780 back-reference (hooks)
        self.regs = RegisterFile()
        self.psl = ProcessorStatus()
        self.ib = InstructionBuffer(memory)
        self.cycle_count = 0
        self.halted = False
        #: per-access-mode stack pointers (kernel..user); the active one
        #: lives in R14 and is swapped on mode change.
        self.mode_sps = [0, 0, 0, 0]
        #: processor registers (MTPR/MFPR space)
        self.pr: Dict[int, int] = {}
        #: ablation knobs: overlap the decode cycle with the previous
        #: instruction (what the later 11/750 did), and the float-execute
        #: slowdown applied when no Floating Point Accelerator is fitted.
        self.decode_overlap = False
        self.float_slowdown = 1
        # per-instruction state
        self.current_opcode: Optional[Opcode] = None
        self.branch_displacement: Optional[int] = None
        self._exec_routine = None
        self._exec_a_used = False
        self._merge_pending = False
        self._last_source_routine = None
        self._instruction_start_cycle = 0
        self._last_instruction_redirected = True
        # Observability: a passive event tracer (repro.obs.trace.Tracer)
        # or None.  Guards sit on per-instruction / per-episode paths
        # only — never inside the per-microcycle tick itself.
        self._tracer = tracer
        self._bind_transients()

    def _bind_transients(self) -> None:
        """(Re)create everything pickling drops.

        Hot-path bindings (the monitor strobe, IB background cycle and
        dispatch entry points are bound once instead of re-resolved
        every cycle), the replay compiler's per-machine state, and the
        tracer wiring.  Runs from ``__init__``, ``__setstate__`` and
        ``set_tracer`` so fresh, restored and re-traced machines are
        indistinguishable.
        """
        monitor = self.monitor
        tracer = self._tracer
        self._observe = monitor.observe if monitor is not None else None
        self._board = monitor.board if monitor is not None else None
        self._bucket_map = monitor._bucket_map if monitor is not None else None
        self._ib_run = self.ib.run
        self._abort_entry = self.layout.abort.address(MicroSlot.COMPUTE_A)
        from repro.cpu.semantics import dispatch  # deferred import breaks the cycle
        from repro.core import compile as replay  # likewise

        self._dispatch = dispatch
        self.ib.tracer = tracer
        if tracer is None:
            # Tracing off: bind the hottest traced site (one call per
            # specifier) straight to the implementation so it pays no
            # wrapper call.
            self._process_specifier = self._process_specifier_impl
        else:
            # Drop the instance binding so the traced class-level wrapper
            # (which opens spec spans) is reachable again.
            self.__dict__.pop("_process_specifier", None)
        # The compiled hot path (repro.core.compile).  Active only when
        # nothing needs the per-cycle interpreted path: no tracer (the
        # tracer's spans narrate individual specifiers and stalls), the
        # standard 16,000-bucket board, and no REPRO_NO_COMPILE=1.
        self._execute_record = replay.execute_record
        self._resolve_record = replay.resolve
        self._peek_image = replay.peek_image
        # Preserved across tracer swaps (records and diagnostics are
        # mode-independent); created fresh on construction and restore.
        if "_record_cache" not in self.__dict__:
            # Replay caches are keyed by decode VA, and a VA only names
            # code *within one address space*: at a context switch the
            # same VA maps to a different process's bytes.  One
            # (record cache, superblock cache) pair per P0 page table,
            # swapped when dispatch notices the table changed, keeps a
            # process's records and blocks warm across switches instead
            # of letting processes evict each other's entries forever.
            self._record_cache = {}
            self._sb_cache = {}
            self._space_caches = {None: (self._record_cache, self._sb_cache)}
            self._cache_space = None
            self._records_overlap = self.decode_overlap
        if "compile_stats" not in self.__dict__:
            self.compile_stats = replay.CompileStats()
        # Superblock formation: the chain of consecutively replayed
        # (va, record) pairs, and the layout-wide candidate/block state.
        # The chain starts empty on every rebind — a tracer swap or
        # snapshot restore breaks the consecutive-execution property the
        # window asserts.
        self._sb_chain = []
        self._sb_state = replay.superblock_state(self.layout)
        self._chain_note = replay.chain_note
        self._chain_break = replay.chain_break
        # The costs.skew fault site (repro.testing.faults): when armed,
        # the named micro-routine overcharges compute cycles — the
        # seeded model error the refutation suite exists to catch.  The
        # compiled path replays charges from specialized programs that
        # never consult the skew, so an armed skew forces the
        # interpreted path in every mode: all three arms then disagree
        # with the analytic model identically instead of disagreeing
        # with each other.
        from repro.testing.faults import cost_skew

        self._cost_skew = cost_skew()
        would_compile = (
            self._cost_skew is None
            and not replay.compile_disabled_by_env()
            and (
                self._board is None
                or self._board.buckets == replay.LayoutReplay.BUCKETS
            )
        )
        self._compile_active = tracer is None and would_compile
        #: True when an attached tracer — and nothing else — is what
        #: keeps the compiled path off.  Surfaced as the
        #: ``sim.compile.disabled_by_tracer`` metric and warned about
        #: once per machine: a silent 1.6x mode switch poisons A/B
        #: numbers.
        self._compile_disabled_by_tracer = tracer is not None and would_compile
        if self._compile_disabled_by_tracer and not self.__dict__.get(
            "_tracer_fallback_warned"
        ):
            self._tracer_fallback_warned = True
            from repro.obs.log import get_logger

            get_logger("compile").warn(
                "tracer attached: compiled hot path disabled, "
                "running interpreted (timings are not comparable to "
                "untraced runs; counted results are bit-identical)"
            )
        # The compile-lifecycle event channel (repro.obs.channel).
        # Unlike the tracer it does not change which path runs; it is
        # preserved across rebinds so attach order never matters.
        if "_compile_events" not in self.__dict__:
            self._compile_events = None
        if self._compile_active:
            self.compile_stats.routines_specialized = len(
                replay.specialize_layout(self.layout)
            )

    #: attributes _bind_transients owns; dropped from pickles so machine
    #: snapshots are byte-identical whether the run that produced them
    #: was compiled or interpreted (and so bound methods, replay caches
    #: and diagnostics never bloat the snapshot).
    _TRANSIENTS = (
        "_cost_skew",
        "_observe",
        "_board",
        "_bucket_map",
        "_ib_run",
        "_abort_entry",
        "_dispatch",
        "_process_specifier",
        "_tracer",
        "_execute_record",
        "_resolve_record",
        "_peek_image",
        "_record_cache",
        "_sb_cache",
        "_space_caches",
        "_cache_space",
        "_records_overlap",
        "compile_stats",
        "_compile_active",
        "_compile_disabled_by_tracer",
        "_tracer_fallback_warned",
        "_compile_events",
        "_sb_chain",
        "_sb_state",
        "_chain_note",
        "_chain_break",
    )

    def set_compile_events(self, channel) -> None:
        """Attach (``None``: detach) the compile-lifecycle event
        channel (:class:`repro.obs.channel.EventChannel`).  Strictly
        passive *and* path-neutral: unlike a tracer, an attached
        channel leaves the compiled path enabled — that is its whole
        point."""
        self._compile_events = channel

    def __getstate__(self):
        state = self.__dict__.copy()
        for name in self._TRANSIENTS:
            state.pop(name, None)
        return state

    def __setstate__(self, state) -> None:
        self.__dict__.update(state)
        # Tracers are deliberately not carried through pickles; snapshot
        # restore wires one (or none) via machine.attach_tracer.
        self._tracer = None
        self._bind_transients()

    def set_tracer(self, tracer) -> None:
        """(Re)bind the passive tracer, keeping the fast paths honest.

        Snapshot capture detaches the tracer before pickling and restore
        attaches the caller's (or none); the specifier fast-path binding
        and the compiled-path gate must track the tracer, so all tracer
        swaps go through here."""
        self._tracer = tracer
        self._bind_transients()

    # ------------------------------------------------------------------
    # cycle accounting
    # ------------------------------------------------------------------

    def _tick(self, address: int, count: int = 1, stalled: bool = False) -> None:
        """Spend ``count`` cycles at micro-PC ``address``.

        Every EBOX cycle also gives the I-Fetch hardware a background
        cycle — prefetch proceeds underneath computation and stalls
        alike.  The monitor's count-board step and the prefetcher's
        nothing-can-happen exits (fill outstanding, TB-miss paused,
        buffer full) are inlined here: this and :meth:`_tick_slot` run
        once per simulated EBOX cycle burst.
        """
        if count <= 0:
            return
        board = self._board
        if board is not None and board._collecting:
            bucket = self._bucket_map[address]
            if stalled:
                board._stalled_counts[bucket] += count
            else:
                board._counts[bucket] += count
        self.cycle_count += count
        ib = self.ib
        wait = ib._fill_wait
        if wait == 0:
            if ib.tb_miss_pending or len(ib._bytes) >= 8:
                ib._now += count
            else:
                self._ib_run(count)
        elif wait > count:
            # Waiting out a fill that outlasts this burst: pure countdown.
            ib._fill_wait = wait - count
            ib._now += count
        else:
            self._ib_run(count)

    def _tick_slot(self, routine, slot: int, count: int = 1, stalled: bool = False) -> None:
        """Spend ``count`` cycles at slot index ``slot`` of ``routine``.

        This is :meth:`_tick` inlined over ``routine.slot_addrs`` — the
        per-microcycle fast path.
        """
        if count <= 0:
            return
        if routine.patched and slot == _COMPUTE_A:
            # A patched entry microinstruction costs one abort cycle per
            # execution (the microsequencer detours through the patch
            # area), in addition to its normal cycle.
            self._tick(self._abort_entry)
        board = self._board
        if board is not None and board._collecting:
            bucket = self._bucket_map[routine.slot_addrs[slot]]
            if stalled:
                board._stalled_counts[bucket] += count
            else:
                board._counts[bucket] += count
        self.cycle_count += count
        ib = self.ib
        wait = ib._fill_wait
        if wait == 0:
            if ib.tb_miss_pending or len(ib._bytes) >= 8:
                ib._now += count
            else:
                self._ib_run(count)
        elif wait > count:
            ib._fill_wait = wait - count
            ib._now += count
        else:
            self._ib_run(count)

    def _charge_compute(self, routine, cycles: int) -> None:
        """Spend compute cycles: first at COMPUTE_A, the rest at COMPUTE_B."""
        skew = self._cost_skew
        if skew is not None and routine.name == skew[0]:
            cycles += skew[1]
        if cycles <= 0:
            return
        self._tick_slot(routine, _COMPUTE_A)
        if cycles > 1:
            self._tick_slot(routine, _COMPUTE_B, count=cycles - 1)

    # ------------------------------------------------------------------
    # memory references with microtrap handling
    # ------------------------------------------------------------------

    def data_read(self, va: int, size: int, routine, source: str) -> int:
        """One D-stream read, with TB-miss/page-fault service and charging."""
        # The fused all-hit path: no stall, no unaligned detour, no
        # outcome object.  Identical counters and ticks to a zero-stall
        # aligned hit on the general path below.
        value = self.memory.read_fast(va, size)
        if value is not None:
            self._tick_slot(routine, _READ)
            self.events.reads_by_source[source] += 1
            return value
        while True:
            try:
                outcome = self.memory.read(va, size, now=self.cycle_count)
                break
            except TBMiss as miss:
                self._service_tb_miss(miss.va, write=False)
            except PageFault as fault:
                self._deliver_page_fault(fault)
        self._tick_slot(routine, _READ)
        if outcome.stall_cycles:
            stall_start = self.cycle_count
            self._tick_slot(routine, _READ, count=outcome.stall_cycles, stalled=True)
            tracer = self._tracer
            if tracer is not None:
                tracer.complete(
                    "MEM",
                    stall_start,
                    "read stall",
                    outcome.stall_cycles,
                    {"va": va, "routine": routine.name},
                )
        if outcome.unaligned:
            self._charge_unaligned(read=True)
        self.events.reads_by_source[source] += 1
        return outcome.value

    def data_write(self, va: int, size: int, value: int, routine, source: str) -> None:
        """One D-stream write, with TB-miss/page-fault service and charging."""
        # Fused aligned path: a write proceeds whether the cache hit or
        # not, so only a TB miss (microtrap), a straddling span or a
        # trace hook falls through to the general loop.
        stall = self.memory.write_fast(va, size, value, self.cycle_count)
        if stall is not None:
            self._tick_slot(routine, _WRITE)
            if stall:
                stall_start = self.cycle_count
                self._tick_slot(routine, _WRITE, count=stall, stalled=True)
                tracer = self._tracer
                if tracer is not None:
                    tracer.complete(
                        "MEM",
                        stall_start,
                        "write stall",
                        stall,
                        {"va": va, "routine": routine.name},
                    )
            self.events.writes_by_source[source] += 1
            return
        while True:
            try:
                outcome = self.memory.write(va, size, value, now=self.cycle_count)
                break
            except TBMiss as miss:
                self._service_tb_miss(miss.va, write=True)
            except PageFault as fault:
                self._deliver_page_fault(fault)
        self._tick_slot(routine, _WRITE)
        if outcome.stall_cycles:
            stall_start = self.cycle_count
            self._tick_slot(routine, _WRITE, count=outcome.stall_cycles, stalled=True)
            tracer = self._tracer
            if tracer is not None:
                tracer.complete(
                    "MEM",
                    stall_start,
                    "write stall",
                    outcome.stall_cycles,
                    {"va": va, "routine": routine.name},
                )
        if outcome.unaligned:
            self._charge_unaligned(read=False)
        self.events.writes_by_source[source] += 1

    def _charge_unaligned(self, read: bool) -> None:
        """The alignment microcode's extra work for a straddling reference."""
        alignment = self.layout.alignment
        self._charge_compute(alignment, UNALIGNED_EXTRA_CYCLES)
        slot = _READ if read else _WRITE
        self._tick_slot(alignment, slot)

    def _service_tb_miss(self, va: int, write: bool) -> None:
        """Microtrap into the TB-miss service routine.

        One abort cycle (the trap), then the service routine: compute
        cycles plus the PTE read, whose own cache miss shows up as read
        stall inside memory management — the paper's 21.6-cycle average
        with 3.5 stall cycles.
        """
        tracer = self._tracer
        if tracer is not None:
            tracer.begin("UCODE", self.cycle_count, "tb miss service", {"va": va, "write": write})
        self._tick_slot(self.layout.abort, _COMPUTE_A)
        routine = self.layout.tb_miss
        self._charge_compute(routine, TB_MISS_COMPUTE_CYCLES)
        while True:
            try:
                fill = self.memory.service_tb_miss(va, write=write, now=self.cycle_count)
                break
            except PageFault as fault:
                self._deliver_page_fault(fault)
        self._tick_slot(routine, _READ)
        if fill.pte_read_stall_cycles:
            self._tick_slot(
                routine, _READ, count=fill.pte_read_stall_cycles, stalled=True
            )
        if tracer is not None:
            tracer.end("UCODE", self.cycle_count)

    def _deliver_page_fault(self, fault: PageFault) -> None:
        """Exception entry plus the pager's work.

        The reproduction services faults inline (map the page, charge the
        delivery microcode and the pager's kernel activity) rather than
        aborting and restarting the instruction; DESIGN.md documents this
        simplification — frequencies and cycle accounting are preserved.
        """
        self.events.page_faults += 1
        if self._tracer is not None:
            self._tracer.instant(
                "VMS",
                self.cycle_count,
                "page fault",
                {"va": fault.va, "write": fault.write},
            )
        routine = self.layout.exception
        self._charge_compute(routine, EXCEPTION_ENTRY_COMPUTE_CYCLES)
        self._tick_slot(routine, _WRITE, count=EXCEPTION_ENTRY_WRITES)
        for _ in range(EXCEPTION_ENTRY_WRITES):
            self.events.writes_by_source["other"] += 1
        if self.machine is None or not self.machine.handle_page_fault(fault.va, fault.write):
            raise HaltExecution(
                "unrecoverable page fault at {:#010x}".format(fault.va)
            )

    # ------------------------------------------------------------------
    # I-stream consumption
    # ------------------------------------------------------------------

    def _take_bytes(self, count: int, wait_routine) -> bytes:
        """Consume I-stream bytes, spending IB-stall cycles as needed."""
        waited = 0
        while True:
            data = self.ib.try_consume(count)
            if data is not None:
                if waited and self._tracer is not None:
                    self._tracer.instant(
                        "IFETCH",
                        self.cycle_count,
                        "ib stall",
                        {"cycles": waited, "routine": wait_routine.name},
                    )
                return data
            if self.ib.tb_miss_pending:
                self._service_istream_tb_miss()
                continue
            self._tick_slot(wait_routine, _IB_WAIT)
            waited += 1
            if waited > _STALL_WATCHDOG_CYCLES:
                raise HaltExecution(
                    "IB stall watchdog at va {:#010x}".format(self.ib.decode_va)
                )

    def _service_istream_tb_miss(self) -> None:
        """The deferred I-stream TB miss, noticed when bytes ran out."""
        self._service_tb_miss(self.ib.fetch_va, write=False)
        self.ib.clear_tb_miss()

    # ------------------------------------------------------------------
    # specifier processing
    # ------------------------------------------------------------------

    def _process_specifier(self, position: int, spec: OperandSpec) -> OperandRef:
        tracer = self._tracer
        if tracer is None:
            return self._process_specifier_impl(position, spec)
        # The span opens before any bytes are consumed (nested IB-stall /
        # TB-miss events must fall inside it); the addressing mode is
        # only known at the close, so it rides on the end event's args.
        tracer.begin("UCODE", self.cycle_count, "spec1" if position == 0 else "spec26")
        operand = self._process_specifier_impl(position, spec)
        tracer.end("UCODE", self.cycle_count, {"mode": operand.mode.name})
        return operand

    def _process_specifier_impl(self, position: int, spec: OperandSpec) -> OperandRef:
        is_first = position == 0
        wait_routine = self.layout.spec1_wait if is_first else self.layout.spec26_wait
        decoded = decode_specifier(
            lambda n: self._take_bytes(n, wait_routine), spec.dtype
        )
        position_class = "spec1" if is_first else "spec26"

        # Microcode sharing: indexed specifiers run the shared index
        # microcode in the SPEC2-6 region, even for first specifiers.
        if decoded.is_indexed:
            routine_bank = self.layout.spec26
            self._charge_compute(self.layout.index_shared, INDEX_EXTRA_CYCLES)
            self.events.indexed_specifiers[position_class] += 1
        else:
            routine_bank = self.layout.spec1 if is_first else self.layout.spec26
        routine = routine_bank[decoded.mode]

        self.events.specifier_counts[
            (position_class, TABLE4_ROW_FOR_MODE[decoded.mode])
        ] += 1
        self.events.specifier_bytes += decoded.length
        table5_row = "spec1" if is_first else "spec2_6"

        cost = SPEC_COSTS[decoded.mode]
        self._charge_compute(routine, cost.address_cycles)

        size = _DTYPE_SIZE[spec.dtype]
        mode = decoded.mode
        operand = OperandRef(
            spec=spec,
            mode=mode,
            register=decoded.register,
            address=None,
            value=None,
            routine=routine,
            position_class=position_class,
        )
        operand.is_indexed = decoded.is_indexed

        if mode is AddressingMode.SHORT_LITERAL:
            if spec.access not in (AccessType.READ, AccessType.VFIELD):
                raise IllegalInstruction("short literal used for non-read access")
            if spec.dtype is DataType.F_FLOAT:
                operand.value = f_floating_encode(expand_float_literal(decoded.extension))
            else:
                operand.value = decoded.extension
            self._note_source(routine, spec)
            return operand

        if mode is AddressingMode.IMMEDIATE:
            if spec.access not in (AccessType.READ, AccessType.VFIELD):
                raise IllegalInstruction("immediate used for non-read access")
            operand.value = decoded.extension
            self._note_source(routine, spec)
            return operand

        if mode is AddressingMode.REGISTER:
            if spec.access in (AccessType.READ, AccessType.MODIFY, AccessType.VFIELD):
                # A field base in a register means the field lives in the
                # register itself: read the whole longword regardless of
                # the nominal (byte) data type.
                dtype = (
                    DataType.LONG if spec.access is AccessType.VFIELD else spec.dtype
                )
                operand.value = self._read_register_operand(decoded.register, dtype)
            if spec.access is AccessType.ADDRESS:
                raise IllegalInstruction("address access to a register operand")
            self._note_source(routine, spec)
            return operand

        # Memory modes: compute the effective address.
        address = self._effective_address(decoded, size, routine, table5_row)
        if decoded.is_indexed:
            index_value = self.regs.read(decoded.index_register)
            address = (address + index_value * size) & 0xFFFFFFFF
        operand.address = address

        if spec.access in (AccessType.READ, AccessType.MODIFY):
            operand.value = self.data_read(address, size, routine, table5_row)
        self._note_source(routine, spec)
        return operand

    def _note_source(self, routine, spec: OperandSpec) -> None:
        """Track the last *source* specifier for the literal/register
        execute-merge optimization (Section 5's first remark)."""
        if spec.access is AccessType.READ:
            self._last_source_routine = routine

    def _read_register_operand(self, register: int, dtype: DataType) -> int:
        if dtype is DataType.QUAD:
            low = self.regs.read(register)
            high = self.regs.read((register + 1) & 0xF)
            return low | (high << 32)
        size = _DTYPE_SIZE[dtype]
        return self.regs.read(register) & ((1 << (8 * size)) - 1)

    def _effective_address(self, decoded, size: int, routine, table5_row: str) -> int:
        mode = decoded.mode
        regs = self.regs
        if mode is AddressingMode.REGISTER_DEFERRED:
            return regs.read(decoded.register)
        if mode is AddressingMode.AUTOINCREMENT:
            address = regs.read(decoded.register)
            regs.write(decoded.register, address + size)
            return address
        if mode is AddressingMode.AUTODECREMENT:
            address = (regs.read(decoded.register) - size) & 0xFFFFFFFF
            regs.write(decoded.register, address)
            return address
        if mode is AddressingMode.AUTOINCREMENT_DEFERRED:
            pointer = regs.read(decoded.register)
            regs.write(decoded.register, pointer + 4)
            return self.data_read(pointer, 4, routine, table5_row)
        if mode in (
            AddressingMode.BYTE_DISPLACEMENT,
            AddressingMode.WORD_DISPLACEMENT,
            AddressingMode.LONG_DISPLACEMENT,
        ):
            return (regs.read(decoded.register) + decoded.extension) & 0xFFFFFFFF
        if mode in (
            AddressingMode.BYTE_DISPLACEMENT_DEFERRED,
            AddressingMode.WORD_DISPLACEMENT_DEFERRED,
            AddressingMode.LONG_DISPLACEMENT_DEFERRED,
        ):
            pointer = (regs.read(decoded.register) + decoded.extension) & 0xFFFFFFFF
            return self.data_read(pointer, 4, routine, table5_row)
        if mode is AddressingMode.ABSOLUTE:
            return decoded.extension & 0xFFFFFFFF
        if mode in (
            AddressingMode.BYTE_RELATIVE,
            AddressingMode.WORD_RELATIVE,
            AddressingMode.LONG_RELATIVE,
        ):
            return (self.ib.decode_va + decoded.extension) & 0xFFFFFFFF
        if mode in (
            AddressingMode.BYTE_RELATIVE_DEFERRED,
            AddressingMode.WORD_RELATIVE_DEFERRED,
            AddressingMode.LONG_RELATIVE_DEFERRED,
        ):
            pointer = (self.ib.decode_va + decoded.extension) & 0xFFFFFFFF
            return self.data_read(pointer, 4, routine, table5_row)
        raise IllegalInstruction("unhandled addressing mode {}".format(mode))

    # ------------------------------------------------------------------
    # execute-phase services for semantics handlers
    # ------------------------------------------------------------------

    def exec_compute(self, cycles: int = 1) -> None:
        """Spend execute-phase compute cycles at the current opcode's routine."""
        skew = self._cost_skew
        if skew is not None and self._exec_routine.name == skew[0]:
            cycles += skew[1]
        if cycles <= 0:
            return
        if self._merge_pending:
            # The literal/register optimization: the first execute cycle
            # is combined with the last specifier cycle (already charged
            # in the specifier row).
            self._merge_pending = False
            cycles -= 1
            if cycles <= 0:
                return
        routine = self._exec_routine
        if not self._exec_a_used:
            self._tick_slot(routine, _COMPUTE_A)
            self._exec_a_used = True
            cycles -= 1
        if cycles > 0:
            self._tick_slot(routine, _COMPUTE_B, count=cycles)

    def exec_loop(self, cycles: int) -> None:
        """Loop-body compute cycles (always the COMPUTE_B slot)."""
        if cycles > 0:
            self._tick_slot(self._exec_routine, _COMPUTE_B, count=cycles)

    def exec_read(self, va: int, size: int) -> int:
        """An execute-phase memory read (stack pops, string loops ...)."""
        source = _TABLE5_GROUP_ROW[self.current_opcode.group]
        return self.data_read(va, size, self._exec_routine, source)

    def exec_write(self, va: int, size: int, value: int) -> None:
        """An execute-phase memory write (stack pushes, string stores ...)."""
        source = _TABLE5_GROUP_ROW[self.current_opcode.group]
        self.data_write(va, size, value, self._exec_routine, source)

    def exec_read_physical(self, pa: int, size: int) -> int:
        """A physically-addressed execute-phase read (PCB traffic)."""
        outcome = self.memory.read_physical(pa, size, now=self.cycle_count)
        self._tick_slot(self._exec_routine, _READ)
        if outcome.stall_cycles:
            stall_start = self.cycle_count
            self._tick_slot(
                self._exec_routine, _READ, count=outcome.stall_cycles, stalled=True
            )
            if self._tracer is not None:
                self._tracer.complete(
                    "MEM", stall_start, "read stall", outcome.stall_cycles, {"pa": pa}
                )
        source = _TABLE5_GROUP_ROW[self.current_opcode.group]
        self.events.reads_by_source[source] += 1
        return outcome.value

    def exec_write_physical(self, pa: int, size: int, value: int) -> None:
        """A physically-addressed execute-phase write (PCB traffic)."""
        outcome = self.memory.write_physical(pa, size, value, now=self.cycle_count)
        self._tick_slot(self._exec_routine, _WRITE)
        if outcome.stall_cycles:
            stall_start = self.cycle_count
            self._tick_slot(
                self._exec_routine, _WRITE, count=outcome.stall_cycles, stalled=True
            )
            if self._tracer is not None:
                self._tracer.complete(
                    "MEM", stall_start, "write stall", outcome.stall_cycles, {"pa": pa}
                )
        source = _TABLE5_GROUP_ROW[self.current_opcode.group]
        self.events.writes_by_source[source] += 1

    def push(self, value: int) -> None:
        """Push one longword onto the current stack."""
        sp = (self.regs.sp - 4) & 0xFFFFFFFF
        self.regs.sp = sp
        self.exec_write(sp, 4, value)

    def pop(self) -> int:
        """Pop one longword from the current stack."""
        sp = self.regs.sp
        value = self.exec_read(sp, 4)
        self.regs.sp = (sp + 4) & 0xFFFFFFFF
        return value

    def store(self, operand: OperandRef, value: int) -> None:
        """Store an instruction result through its destination specifier.

        Register stores ride on cycles already charged; memory stores
        execute the specifier routine's write microinstruction.
        """
        dtype = operand.dtype
        if operand.is_register:
            if dtype is DataType.QUAD:
                self.regs.write(operand.register, value & 0xFFFFFFFF)
                self.regs.write((operand.register + 1) & 0xF, (value >> 32) & 0xFFFFFFFF)
            else:
                size = _DTYPE_SIZE[dtype]
                if size < 4:
                    # Sub-longword register writes merge into the low bits.
                    old = self.regs.read(operand.register)
                    mask = (1 << (8 * size)) - 1
                    value = (old & ~mask) | (value & mask)
                self.regs.write(operand.register, value & 0xFFFFFFFF)
            return
        if operand.address is None:
            raise IllegalInstruction("store to a valueless operand")
        size = _DTYPE_SIZE[dtype]
        table5_row = "spec1" if operand.position_class == "spec1" else "spec2_6"
        self.data_write(operand.address, size, value, operand.routine, table5_row)

    # -- branching ---------------------------------------------------------

    def branch_with_displacement(self, taken: bool) -> None:
        """Resolve a branch-displacement branch (Table 2 accounting is the
        caller's job).  When taken: one B-DISP compute cycle to form the
        target, one execute cycle to redirect the IB."""
        opcode = self.current_opcode
        if not taken:
            return
        self._tick_slot(self.layout.bdisp, _COMPUTE_A)
        target = (self.ib.decode_va + self.branch_displacement) & 0xFFFFFFFF
        self._redirect(target)

    def jump(self, target: int) -> None:
        """Redirect to a target from a specifier or implicit source."""
        self._redirect(target)

    def _redirect(self, target: int) -> None:
        profile = exec_profile(self.current_opcode)
        if profile.taken_extra_cycles:
            self.exec_loop(profile.taken_extra_cycles)
        self.ib.redirect(target)

    def record_branch(self, taken: bool) -> None:
        """Table 2 accounting for the current PC-changing instruction."""
        branch_class = self.current_opcode.branch_class
        if branch_class is not None:
            self.events.record_branch(branch_class.value, taken)

    # -- mode/stack plumbing -------------------------------------------------

    def switch_mode(self, new_mode: AccessMode) -> None:
        """Change access mode, swapping the per-mode stack pointers."""
        old_mode = self.psl.current_mode
        if new_mode is old_mode:
            return
        self.mode_sps[int(old_mode)] = self.regs.sp
        self.psl.previous_mode = old_mode
        self.psl.current_mode = new_mode
        self.regs.sp = self.mode_sps[int(new_mode)]

    # ------------------------------------------------------------------
    # the instruction loop
    # ------------------------------------------------------------------

    def reset(self, start_va: int, sp: int = 0, mode: AccessMode = AccessMode.KERNEL) -> None:
        """Point the machine at ``start_va`` with a fresh pipeline."""
        self.psl.current_mode = mode
        self.regs.sp = sp
        self.regs.pc = start_va
        self.ib.redirect(start_va)
        self.halted = False

    def step(self) -> bool:
        """Run one instruction (or deliver one interrupt).

        Returns False once halted.
        """
        if self.halted:
            return False

        if self.machine is not None:
            pending = self.machine.pending_interrupt(self.psl.ipl)
            if pending is not None:
                self._deliver_interrupt(*pending)
                return True

        if self._compile_active:
            return self._step_compiled()
        return self._step_interpreted()

    def _switch_space(self, space) -> None:
        """Activate the replay caches for the current P0 address space.

        Keyed by page-table object identity; tables live as long as
        their process, so an entry here never outlives the code it
        caches.  The formation chain never survives a switch — the
        consecutive instructions it asserts straddle two programs.
        """
        entry = self._space_caches.get(space)
        if entry is None:
            entry = ({}, {})
            self._space_caches[space] = entry
        self._record_cache, self._sb_cache = entry
        self._cache_space = space
        self._sb_chain.clear()

    def _step_compiled(self) -> bool:
        """Replay the next instruction from its compiled record.

        Anything without a valid record — bytes not fully buffered yet,
        permanently uncompilable instructions, a stale cache entry —
        falls through to :meth:`_step_interpreted` for this execution.
        """
        if self.decode_overlap is not self._records_overlap:
            # The ablation knob flipped since the cache was built;
            # records bake the decode-tick shape in.
            self._space_caches.clear()
            self._records_overlap = self.decode_overlap
            self._switch_space(self.memory.page_tables["p0"])
        else:
            space = self.memory.page_tables["p0"]
            if space is not self._cache_space:
                self._switch_space(space)
        ib = self.ib
        va = ib._decode_va
        cache = self._record_cache
        stats = self.compile_stats
        cause = None  # why this execution interprets, if it does
        record = cache.get(va)
        if record is not None:
            if record.never:
                if ib._bytes.startswith(record.raw):
                    self._chain_break(self)
                    start = self.cycle_count
                    result = self._step_interpreted()
                    stats.jit_misses += 1
                    stats.slow_cycles += self.cycle_count - start
                    stats.note_fallback("uncompilable")
                    channel = self._compile_events
                    if channel is not None:
                        channel.emit(start, "fallback", "uncompilable", va)
                    return result
                stats.byte_fallbacks += 1
                cause = "byte_mismatch"
            elif record.run(self, va):
                stats.jit_hits += 1
                stats.fast_cycles += (
                    self.cycle_count - self._instruction_start_cycle
                )
                self._chain_note(self, va, record)
                return not self.halted
            else:
                # Bytes at this address changed (process aliasing or a
                # rewritten program): re-resolve against the buffer.
                stats.byte_fallbacks += 1
                cause = "byte_mismatch"
        probe = ib._bytes
        if len(probe) < 8:
            # The IB was flushed (taken branch) or is still filling:
            # resolve against the side-effect-free lookahead image of
            # what the prefetcher will deliver.
            image = self._peek_image(self)
            if image is not None and len(image) > len(probe):
                probe = image
        compiled_before = stats.records_compiled
        record = (
            self._resolve_record(self.layout, probe, self.decode_overlap, stats)
            if probe
            else None
        )
        if record is None and len(probe) >= 8:
            # A full IB that still would not resolve usually means an
            # instruction longer than the buffer: extend the probe by
            # lookahead up to the record image cap.
            image = self._peek_image(self)
            if image is not None and len(image) > len(probe):
                record = self._resolve_record(
                    self.layout, image, self.decode_overlap, stats
                )
        channel = self._compile_events
        if record is not None:
            cache[va] = record
            if channel is not None and stats.records_compiled > compiled_before:
                channel.emit(
                    self.cycle_count,
                    "record formed",
                    record.mnemonic,
                    len(record.raw),
                )
            if not record.never and record.run(self, va):
                stats.jit_hits += 1
                stats.fast_cycles += (
                    self.cycle_count - self._instruction_start_cycle
                )
                self._chain_note(self, va, record)
                return not self.halted
            cause = "uncompilable" if record.never else "byte_mismatch"
        else:
            cause = cause or "unresolved"
        self._chain_break(self)
        start = self.cycle_count
        result = self._step_interpreted()
        stats.jit_misses += 1
        stats.slow_cycles += self.cycle_count - start
        stats.note_fallback(cause)
        if channel is not None:
            channel.emit(start, "fallback", cause, va)
        return result

    def _step_interpreted(self) -> bool:
        """The per-microcycle interpreted path (the replay's oracle)."""
        start_va = self.ib.decode_va
        self._instruction_start_cycle = self.cycle_count

        redirects_before = self.ib.stats.redirects
        opcode_byte = self._take_bytes(1, self.layout.decode)[0]
        # The 780's first I-Decode for an instruction cannot start until
        # the previous instruction completes: one non-overlapped decode
        # cycle each.  With decode_overlap (the 11/750's improvement) the
        # cycle is hidden except after a taken branch.
        if not self.decode_overlap or self._last_instruction_redirected:
            self._tick_slot(self.layout.decode, _COMPUTE_A)
        opcode = OPCODES.get(opcode_byte)
        if opcode is None:
            raise IllegalInstruction(
                "undecodable opcode {:#04x} at {:#010x}".format(opcode_byte, start_va)
            )

        self.current_opcode = opcode
        self._exec_routine = self.layout.execute[opcode.mnemonic]
        self._exec_a_used = False
        self._last_source_routine = None
        self.branch_displacement = None

        tracer = self._tracer
        if tracer is not None:
            # ts is the instruction's first cycle; emitted only now
            # because the span is named after the decoded opcode.
            tracer.begin(
                "EBOX",
                self._instruction_start_cycle,
                opcode.mnemonic,
                {"va": start_va},
            )

        operands: List[OperandRef] = []
        for position, spec in enumerate(opcode.operands):
            if spec.access is AccessType.BRANCH:
                width = _DTYPE_SIZE[spec.dtype]
                raw = self._take_bytes(width, self.layout.bdisp)
                value = int.from_bytes(raw, "little")
                if value & (1 << (8 * width - 1)):
                    value -= 1 << (8 * width)
                self.branch_displacement = value
                self.events.branch_displacements += 1
                self.events.displacement_bytes += width
            else:
                operands.append(self._process_specifier(position, spec))

        self._merge_pending = (
            opcode.group in (OpcodeGroup.SIMPLE, OpcodeGroup.FIELD)
            and self._last_source_routine is not None
            and operands
            and operands[-1].mode
            in (AddressingMode.REGISTER, AddressingMode.SHORT_LITERAL)
        )

        self.events.instruction_bytes += self.ib.decode_va - start_va
        self.events.opcode_counts[opcode.mnemonic] += 1

        if tracer is not None:
            tracer.begin(
                "UCODE", self.cycle_count, self._exec_routine.name
            )
            self._dispatch(self, opcode, operands)
            tracer.end("UCODE", self.cycle_count)
            tracer.end("EBOX", self.cycle_count)
        else:
            self._dispatch(self, opcode, operands)

        self.events.instructions += 1
        self.regs.pc = self.ib.decode_va
        self._merge_pending = False
        self._last_instruction_redirected = (
            self.ib.stats.redirects != redirects_before
        )
        return not self.halted

    def step_block(self, budget: int, limit) -> int:
        """Run one dispatch unit: a superblock when one is installed at
        the current decode address, else one :meth:`step`-equivalent
        instruction.

        ``budget`` bounds the instructions this dispatch may retire
        (the caller's remaining ``max_instructions``); ``limit`` is a
        cycle ceiling — a superblock deopts at the first instruction
        boundary at or past it, exactly where the stepped loop would
        have regained control (the kernel passes the device board's
        next fire time).  Returns instructions retired; 0 means halted
        (the halting instruction itself is not counted, matching the
        ``if not step(): break`` contract).
        """
        if self.halted:
            return 0
        machine = self.machine
        if machine is not None:
            pending = machine.pending_interrupt(self.psl.ipl)
            if pending is not None:
                self._deliver_interrupt(*pending)
                return 1
        if self._compile_active:
            if self.decode_overlap is not self._records_overlap:
                self._space_caches.clear()
                self._records_overlap = self.decode_overlap
                self._switch_space(self.memory.page_tables["p0"])
            else:
                space = self.memory.page_tables["p0"]
                if space is not self._cache_space:
                    self._switch_space(space)
            cache = self._sb_cache
            sb = cache.get(self.ib._decode_va)
            if sb is not None and budget >= sb.length:
                stats = self.compile_stats
                pending = (
                    machine.interrupts._pending if machine is not None else ()
                )
                total = 0
                start = self.cycle_count
                # Consecutive blocks run back-to-back without returning
                # to the caller: between blocks the device board cannot
                # fire (cycle_count < limit) and no interrupt is
                # pending, so the stepped loop's per-instruction poll
                # and delivery checks would all be no-ops here.
                while True:
                    n = sb.run(self, limit)
                    if not n:
                        break
                    total += n
                    stats.superblock_runs += 1
                    stats.superblock_instructions += n
                    if n < sb.length:
                        stats.superblock_deopts += 1
                        # Diagnose the early exit from machine state:
                        # the generated body only leaves the window at
                        # a boundary check (pending interrupt / cycle
                        # limit) or a failed byte guard.
                        if pending:
                            reason = "interrupt"
                        elif self.cycle_count >= limit:
                            reason = "cycle_limit"
                        else:
                            reason = "byte_guard"
                        stats.note_deopt(reason)
                        channel = self._compile_events
                        if channel is not None:
                            channel.emit(self.cycle_count, "deopt", reason, n)
                        break
                    if pending or self.cycle_count >= limit or self.halted:
                        break
                    sb = cache.get(self.ib._decode_va)
                    if sb is None or budget - total < sb.length:
                        break
                if total:
                    stats.jit_hits += total
                    stats.fast_cycles += self.cycle_count - start
                    # The instructions chained before this run were
                    # consecutive right up to the block: promote them
                    # rather than discarding.
                    self._chain_break(self)
                    return total
                # n == 0: the first segment's guard declined with
                # nothing mutated — the per-record path sorts it out.
            return 1 if self._step_compiled() else 0
        return 1 if self._step_interpreted() else 0

    def run(self, max_instructions: int = 1_000_000, max_cycles: Optional[int] = None) -> int:
        """Run until halt or a budget runs out; returns instructions run."""
        executed = 0
        limit = float("inf") if max_cycles is None else max_cycles
        while executed < max_instructions:
            if max_cycles is not None and self.cycle_count >= max_cycles:
                break
            n = self.step_block(max_instructions - executed, limit)
            if not n:
                break
            executed += n
        return executed

    # ------------------------------------------------------------------
    # interrupts
    # ------------------------------------------------------------------

    def _deliver_interrupt(self, ipl: int, vector_va: int) -> None:
        """Interrupt delivery microcode: save state, raise IPL, vector."""
        # Delivery redirects control; the instructions chained so far
        # were still consecutive, so promote them before the detour.
        self._chain_break(self)
        tracer = self._tracer
        if tracer is not None:
            tracer.begin(
                "VMS", self.cycle_count, "interrupt", {"ipl": ipl, "vector": vector_va}
            )
        routine = self.layout.interrupt
        self._charge_compute(routine, INTERRUPT_ENTRY_COMPUTE_CYCLES)
        return_pc = self.ib.decode_va
        saved_psl = self.psl.pack()
        self.switch_mode(AccessMode.KERNEL)
        for value in (saved_psl, return_pc):
            sp = (self.regs.sp - 4) & 0xFFFFFFFF
            self.regs.sp = sp
            self.data_write(sp, 4, value, routine, "other")
        self.psl.ipl = ipl
        self.ib.redirect(vector_va)
        self.regs.pc = vector_va
        self.events.interrupts_delivered += 1
        if tracer is not None:
            tracer.end("VMS", self.cycle_count)
        if self.machine is not None:
            self.machine.acknowledge_interrupt()

"""Execute-phase semantics for the VAX opcode subset.

Each handler does three jobs: perform the instruction's architectural
work (registers, memory, condition codes, PC), spend its execute-phase
microcycles through :meth:`EBox.exec_compute` / :meth:`EBox.exec_loop`,
and perform its execute-phase memory traffic through
:meth:`EBox.exec_read` / :meth:`EBox.exec_write` (which charge the read/
write slots of the opcode's routine and so populate Table 8's columns).

Operand reads and result stores happen through the operand machinery and
charge *specifier* microcode, per the paper's division of labour.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.isa.datatypes import (
    DataType,
    add_with_flags,
    div_with_flags,
    f_floating_decode,
    f_floating_encode,
    mul_with_flags,
    packed_decimal_decode,
    packed_decimal_encode,
    packed_size,
    sign_extend,
    sub_with_flags,
    to_signed,
    truncate,
)
from repro.isa.opcodes import Opcode, OpcodeGroup
from repro.isa.psl import AccessMode
from repro.cpu.operands import OperandRef
from repro.ucode.costs import exec_profile

HANDLERS: Dict[str, Callable] = {}


def handler(*mnemonics):
    def register(fn):
        for mnemonic in mnemonics:
            if mnemonic in HANDLERS:
                raise ValueError("duplicate handler for {}".format(mnemonic))
            HANDLERS[mnemonic] = fn
        return fn

    return register


def dispatch(ebox, opcode: Opcode, operands: List[OperandRef]) -> None:
    """Run the execute phase of ``opcode``."""
    try:
        fn = HANDLERS[opcode.mnemonic]
    except KeyError:
        raise NotImplementedError(
            "no execute semantics for {}".format(opcode.mnemonic)
        ) from None
    fn(ebox, opcode, operands)


_BITS = {
    DataType.BYTE: 8,
    DataType.WORD: 16,
    DataType.LONG: 32,
    DataType.QUAD: 64,
    DataType.F_FLOAT: 32,
}


def _bits(dtype: DataType) -> int:
    return _BITS[dtype]


def _base_cycles(ebox) -> int:
    cycles = exec_profile(ebox.current_opcode).base_cycles
    if ebox.current_opcode.group is OpcodeGroup.FLOAT and ebox.float_slowdown > 1:
        # Without the Floating Point Accelerator the float microcode
        # grinds through the fraction datapath serially.
        cycles *= ebox.float_slowdown
    return cycles


def _per_item(ebox) -> int:
    return exec_profile(ebox.current_opcode).per_item_cycles


# ---------------------------------------------------------------------------
# moves and simple unary operations
# ---------------------------------------------------------------------------


@handler("MOVB", "MOVW", "MOVL", "MOVQ")
def _move(ebox, opcode, ops):
    value = ops[0].value
    ebox.exec_compute(_base_cycles(ebox))
    ebox.psl.cc.set_nz(value, _bits(ops[0].dtype))
    ebox.store(ops[1], value)


@handler("MOVZBW", "MOVZBL", "MOVZWL")
def _move_zero_extended(ebox, opcode, ops):
    ebox.exec_compute(_base_cycles(ebox))
    ebox.psl.cc.set_nz(ops[0].value, _bits(ops[1].dtype))
    ebox.store(ops[1], ops[0].value)


@handler("MOVAB", "MOVAW", "MOVAL", "MOVAQ")
def _move_address(ebox, opcode, ops):
    ebox.exec_compute(_base_cycles(ebox))
    address = ops[0].address
    ebox.psl.cc.set_nz(address, 32)
    ebox.store(ops[1], address)


@handler("PUSHAB", "PUSHAW", "PUSHAL")
def _push_address(ebox, opcode, ops):
    ebox.exec_compute(_base_cycles(ebox))
    address = ops[0].address
    ebox.psl.cc.set_nz(address, 32)
    ebox.push(address)


@handler("PUSHL")
def _pushl(ebox, opcode, ops):
    ebox.exec_compute(_base_cycles(ebox))
    ebox.psl.cc.set_nz(ops[0].value, 32)
    ebox.push(ops[0].value)


@handler("CLRB", "CLRW", "CLRL", "CLRQ")
def _clear(ebox, opcode, ops):
    ebox.exec_compute(_base_cycles(ebox))
    ebox.psl.cc.set_nz(0, 32)
    ebox.store(ops[0], 0)


@handler("MCOMB", "MCOMW", "MCOML")
def _complement(ebox, opcode, ops):
    bits = _bits(ops[0].dtype)
    value = (~ops[0].value) & ((1 << bits) - 1)
    ebox.exec_compute(max(1, _base_cycles(ebox)))
    ebox.psl.cc.set_nz(value, bits)
    ebox.store(ops[1], value)


@handler("MNEGB", "MNEGW", "MNEGL")
def _negate(ebox, opcode, ops):
    bits = _bits(ops[0].dtype)
    result, cc = sub_with_flags(0, ops[0].value, bits)
    ebox.exec_compute(max(1, _base_cycles(ebox)))
    ebox.psl.cc = cc
    ebox.store(ops[1], result)


@handler("CVTBW", "CVTBL", "CVTWL", "CVTWB", "CVTLB", "CVTLW")
def _convert_integer(ebox, opcode, ops):
    src_bits = _bits(ops[0].dtype)
    dst_bits = _bits(ops[1].dtype)
    ebox.exec_compute(_base_cycles(ebox))
    extended = sign_extend(ops[0].value, src_bits)
    signed = to_signed(extended, 32)
    result = truncate(extended, dst_bits)
    ebox.psl.cc.set_nz(result, dst_bits)
    limit = 1 << (dst_bits - 1)
    ebox.psl.cc.v = not (-limit <= signed < limit) if dst_bits < src_bits else False
    if ebox.psl.cc.v:
        ebox.events.arithmetic_exceptions += 1
    ebox.store(ops[1], result)


@handler("NOP")
def _nop(ebox, opcode, ops):
    ebox.exec_compute(_base_cycles(ebox))


# ---------------------------------------------------------------------------
# integer ALU
# ---------------------------------------------------------------------------


def _alu_binary(ebox, opcode, ops, operation):
    """Shared body for two- and three-operand ALU forms."""
    bits = _bits(ops[0].dtype)
    a = ops[0].value
    b = ops[1].value  # destination's old value for 2-op (modify access)
    result, cc = operation(a, b, bits)
    ebox.exec_compute(max(1, _base_cycles(ebox)))
    ebox.psl.cc = cc
    ebox.store(ops[-1], result)
    if cc.v:
        ebox.events.arithmetic_exceptions += 1


@handler("ADDB2", "ADDW2", "ADDL2", "ADDB3", "ADDW3", "ADDL3")
def _add(ebox, opcode, ops):
    _alu_binary(ebox, opcode, ops, lambda a, b, bits: add_with_flags(b, a, bits))


@handler("SUBB2", "SUBW2", "SUBL2", "SUBB3", "SUBW3", "SUBL3")
def _sub(ebox, opcode, ops):
    _alu_binary(ebox, opcode, ops, lambda a, b, bits: sub_with_flags(b, a, bits))


@handler("ADWC")
def _adwc(ebox, opcode, ops):
    carry = 1 if ebox.psl.cc.c else 0
    result, cc = add_with_flags(ops[1].value, ops[0].value, 32, carry_in=carry)
    ebox.exec_compute(_base_cycles(ebox))
    ebox.psl.cc = cc
    ebox.store(ops[1], result)


@handler("SBWC")
def _sbwc(ebox, opcode, ops):
    borrow = 1 if ebox.psl.cc.c else 0
    result, cc = sub_with_flags(ops[1].value, (ops[0].value + borrow) & 0xFFFFFFFF, 32)
    ebox.exec_compute(_base_cycles(ebox))
    ebox.psl.cc = cc
    ebox.store(ops[1], result)


@handler("INCB", "INCW", "INCL")
def _increment(ebox, opcode, ops):
    bits = _bits(ops[0].dtype)
    result, cc = add_with_flags(ops[0].value, 1, bits)
    ebox.exec_compute(max(1, _base_cycles(ebox)))
    ebox.psl.cc = cc
    ebox.store(ops[0], result)


@handler("DECB", "DECW", "DECL")
def _decrement(ebox, opcode, ops):
    bits = _bits(ops[0].dtype)
    result, cc = sub_with_flags(ops[0].value, 1, bits)
    ebox.exec_compute(max(1, _base_cycles(ebox)))
    ebox.psl.cc = cc
    ebox.store(ops[0], result)


@handler("CMPB", "CMPW", "CMPL")
def _compare(ebox, opcode, ops):
    bits = _bits(ops[0].dtype)
    _, cc = sub_with_flags(ops[0].value, ops[1].value, bits)
    ebox.exec_compute(max(1, _base_cycles(ebox)))
    cc.v = False
    ebox.psl.cc = cc


@handler("TSTB", "TSTW", "TSTL")
def _test(ebox, opcode, ops):
    ebox.exec_compute(max(1, _base_cycles(ebox)))
    ebox.psl.cc.set_nz(ops[0].value, _bits(ops[0].dtype))
    ebox.psl.cc.c = False


@handler("BITB", "BITW", "BITL")
def _bit_test(ebox, opcode, ops):
    ebox.exec_compute(max(1, _base_cycles(ebox)))
    ebox.psl.cc.set_nz(ops[0].value & ops[1].value, _bits(ops[0].dtype))


def _logical(ebox, ops, combine):
    bits = _bits(ops[0].dtype)
    result = combine(ops[0].value, ops[1].value) & ((1 << bits) - 1)
    ebox.exec_compute(max(1, _base_cycles(ebox)))
    ebox.psl.cc.set_nz(result, bits)
    ebox.store(ops[-1], result)


@handler("BICB2", "BICW2", "BICL2", "BICB3", "BICW3", "BICL3")
def _bit_clear(ebox, opcode, ops):
    _logical(ebox, ops, lambda mask, value: value & ~mask)


@handler("BISB2", "BISW2", "BISL2", "BISB3", "BISW3", "BISL3")
def _bit_set(ebox, opcode, ops):
    _logical(ebox, ops, lambda mask, value: value | mask)


@handler("XORB2", "XORW2", "XORL2", "XORB3", "XORW3", "XORL3")
def _xor(ebox, opcode, ops):
    _logical(ebox, ops, lambda mask, value: value ^ mask)


@handler("ASHL")
def _arithmetic_shift(ebox, opcode, ops):
    count = to_signed(ops[0].value, 8)
    value = to_signed(ops[1].value, 32)
    ebox.exec_compute(_base_cycles(ebox))
    if count >= 0:
        shifted = value << min(count, 32)
    else:
        shifted = value >> min(-count, 31)
    result = truncate(shifted, 32)
    ebox.psl.cc.set_nz(result, 32)
    ebox.psl.cc.v = to_signed(result, 32) != shifted
    ebox.store(ops[2], result)


@handler("ROTL")
def _rotate(ebox, opcode, ops):
    count = to_signed(ops[0].value, 8) % 32
    value = ops[1].value & 0xFFFFFFFF
    ebox.exec_compute(_base_cycles(ebox))
    result = ((value << count) | (value >> (32 - count))) & 0xFFFFFFFF if count else value
    ebox.psl.cc.set_nz(result, 32)
    ebox.store(ops[2], result)


@handler("MULB2", "MULW2", "MULL2", "MULB3", "MULW3", "MULL3")
def _multiply(ebox, opcode, ops):
    _alu_binary(ebox, opcode, ops, lambda a, b, bits: mul_with_flags(b, a, bits))


@handler("DIVB2", "DIVW2", "DIVL2", "DIVB3", "DIVW3", "DIVL3")
def _divide(ebox, opcode, ops):
    _alu_binary(ebox, opcode, ops, lambda a, b, bits: div_with_flags(b, a, bits))


@handler("EMUL")
def _extended_multiply(ebox, opcode, ops):
    product = to_signed(ops[0].value, 32) * to_signed(ops[1].value, 32)
    product += to_signed(ops[2].value, 32)
    ebox.exec_compute(_base_cycles(ebox))
    result = product & 0xFFFFFFFFFFFFFFFF
    ebox.psl.cc.set_nz(result, 64)
    ebox.store(ops[3], result)


@handler("EDIV")
def _extended_divide(ebox, opcode, ops):
    divisor = to_signed(ops[0].value, 32)
    dividend = to_signed(ops[1].value, 64)
    ebox.exec_compute(_base_cycles(ebox))
    if divisor == 0:
        ebox.psl.cc.v = True
        ebox.events.arithmetic_exceptions += 1
        ebox.store(ops[2], 0)
        ebox.store(ops[3], 0)
        return
    quotient = int(dividend / divisor)
    remainder = dividend - quotient * divisor
    ebox.psl.cc.set_nz(truncate(quotient, 32), 32)
    ebox.psl.cc.v = not (-(1 << 31) <= quotient < (1 << 31))
    ebox.store(ops[2], truncate(quotient, 32))
    ebox.store(ops[3], truncate(remainder, 32))


# ---------------------------------------------------------------------------
# branches
# ---------------------------------------------------------------------------

_CONDITIONS = {
    "BNEQ": lambda cc: not cc.z,
    "BEQL": lambda cc: cc.z,
    "BGTR": lambda cc: not (cc.n or cc.z),
    "BLEQ": lambda cc: cc.n or cc.z,
    "BGEQ": lambda cc: not cc.n,
    "BLSS": lambda cc: cc.n,
    "BGTRU": lambda cc: not (cc.c or cc.z),
    "BLEQU": lambda cc: cc.c or cc.z,
    "BVC": lambda cc: not cc.v,
    "BVS": lambda cc: cc.v,
    "BCC": lambda cc: not cc.c,
    "BCS": lambda cc: cc.c,
    "BRB": lambda cc: True,
    "BRW": lambda cc: True,
}


@handler(*_CONDITIONS)
def _conditional_branch(ebox, opcode, ops):
    taken = _CONDITIONS[opcode.mnemonic](ebox.psl.cc)
    ebox.exec_compute(1)
    ebox.record_branch(taken)
    ebox.branch_with_displacement(taken)


@handler("AOBLSS", "AOBLEQ")
def _add_one_branch(ebox, opcode, ops):
    limit = to_signed(ops[0].value, 32)
    index, cc = add_with_flags(ops[1].value, 1, 32)
    ebox.exec_compute(_base_cycles(ebox))
    ebox.psl.cc.n, ebox.psl.cc.z, ebox.psl.cc.v = cc.n, cc.z, cc.v
    ebox.store(ops[1], index)
    signed = to_signed(index, 32)
    taken = signed < limit if opcode.mnemonic == "AOBLSS" else signed <= limit
    ebox.record_branch(taken)
    ebox.branch_with_displacement(taken)


@handler("SOBGEQ", "SOBGTR")
def _subtract_one_branch(ebox, opcode, ops):
    index, cc = sub_with_flags(ops[0].value, 1, 32)
    ebox.exec_compute(_base_cycles(ebox))
    ebox.psl.cc.n, ebox.psl.cc.z, ebox.psl.cc.v = cc.n, cc.z, cc.v
    ebox.store(ops[0], index)
    signed = to_signed(index, 32)
    taken = signed >= 0 if opcode.mnemonic == "SOBGEQ" else signed > 0
    ebox.record_branch(taken)
    ebox.branch_with_displacement(taken)


@handler("ACBB", "ACBW", "ACBL")
def _add_compare_branch(ebox, opcode, ops):
    bits = _bits(ops[0].dtype)
    limit = to_signed(sign_extend(ops[0].value, bits), 32)
    addend = to_signed(sign_extend(ops[1].value, bits), 32)
    index, cc = add_with_flags(ops[2].value, ops[1].value, bits)
    ebox.exec_compute(_base_cycles(ebox))
    ebox.psl.cc.n, ebox.psl.cc.z, ebox.psl.cc.v = cc.n, cc.z, cc.v
    ebox.store(ops[2], index)
    signed = to_signed(sign_extend(index, bits), 32)
    taken = signed <= limit if addend >= 0 else signed >= limit
    ebox.record_branch(taken)
    ebox.branch_with_displacement(taken)


@handler("BLBS", "BLBC")
def _low_bit_branch(ebox, opcode, ops):
    bit = ops[0].value & 1
    ebox.exec_compute(_base_cycles(ebox))
    taken = bool(bit) if opcode.mnemonic == "BLBS" else not bit
    ebox.record_branch(taken)
    ebox.branch_with_displacement(taken)


@handler("BSBB", "BSBW")
def _branch_subroutine(ebox, opcode, ops):
    ebox.exec_compute(_base_cycles(ebox))
    ebox.push(ebox.ib.decode_va)
    ebox.record_branch(True)
    ebox.branch_with_displacement(True)


@handler("JSB")
def _jump_subroutine(ebox, opcode, ops):
    ebox.exec_compute(_base_cycles(ebox))
    ebox.push(ebox.ib.decode_va)
    ebox.record_branch(True)
    ebox.jump(ops[0].address)


@handler("RSB")
def _return_subroutine(ebox, opcode, ops):
    ebox.exec_compute(_base_cycles(ebox))
    target = ebox.pop()
    ebox.record_branch(True)
    ebox.jump(target)


@handler("JMP")
def _jump(ebox, opcode, ops):
    ebox.exec_compute(_base_cycles(ebox))
    ebox.record_branch(True)
    ebox.jump(ops[0].address)


@handler("CASEB", "CASEW", "CASEL")
def _case(ebox, opcode, ops):
    bits = _bits(ops[0].dtype)
    selector = to_signed(sign_extend(ops[0].value, bits), 32)
    base = to_signed(sign_extend(ops[1].value, bits), 32)
    limit = to_signed(sign_extend(ops[2].value, bits), 32)
    index = selector - base
    table_va = ebox.ib.decode_va
    ebox.exec_compute(_base_cycles(ebox))
    ebox.record_branch(True)  # CASE always redirects (Table 2: 100%)
    if 0 <= index <= limit:
        raw = ebox.exec_read((table_va + 2 * index) & 0xFFFFFFFF, 2)
        displacement = to_signed(raw, 16)
        ebox.jump((table_va + displacement) & 0xFFFFFFFF)
    else:
        ebox.jump((table_va + 2 * (limit + 1)) & 0xFFFFFFFF)


# ---------------------------------------------------------------------------
# bit fields
# ---------------------------------------------------------------------------


def _field_fetch(ebox, pos: int, size: int, base: OperandRef) -> int:
    """Extract ``size`` bits at bit offset ``pos`` from a field base."""
    if size == 0:
        return 0
    if base.is_register:
        surrounding = base.value | (
            ebox.regs.read((base.register + 1) & 0xF) << 32
        )
        return (surrounding >> pos) & ((1 << size) - 1)
    byte_va = (base.address + (pos >> 3)) & 0xFFFFFFFF
    bit = pos & 7
    span = (bit + size + 7) // 8
    raw = ebox.exec_read(byte_va, min(span, 4))
    if span > 4:
        raw |= ebox.exec_read((byte_va + 4) & 0xFFFFFFFF, span - 4) << 32
    return (raw >> bit) & ((1 << size) - 1)


def _field_store(ebox, pos: int, size: int, base: OperandRef, value: int) -> None:
    """Insert ``size`` bits at bit offset ``pos`` into a field base."""
    if size == 0:
        return
    mask = (1 << size) - 1
    value &= mask
    if base.is_register:
        low = ebox.regs.read(base.register)
        high = ebox.regs.read((base.register + 1) & 0xF)
        surrounding = low | (high << 32)
        surrounding = (surrounding & ~(mask << pos)) | (value << pos)
        ebox.regs.write(base.register, surrounding & 0xFFFFFFFF)
        if pos + size > 32:
            ebox.regs.write((base.register + 1) & 0xF, (surrounding >> 32) & 0xFFFFFFFF)
        return
    byte_va = (base.address + (pos >> 3)) & 0xFFFFFFFF
    bit = pos & 7
    span = (bit + size + 7) // 8
    span = min(span, 4)
    raw = ebox.exec_read(byte_va, span)
    raw = (raw & ~(mask << bit)) | (value << bit)
    ebox.exec_write(byte_va, span, raw)


@handler("EXTV", "EXTZV")
def _extract_field(ebox, opcode, ops):
    pos = ops[0].value & 0xFFFFFFFF
    size = ops[1].value & 0x1F
    ebox.exec_compute(_base_cycles(ebox))
    field = _field_fetch(ebox, pos, size, ops[2])
    if opcode.mnemonic == "EXTV" and size:
        field = sign_extend(field, size)
    ebox.psl.cc.set_nz(field, 32)
    ebox.store(ops[3], field)


@handler("INSV")
def _insert_field(ebox, opcode, ops):
    value = ops[0].value
    pos = ops[1].value & 0xFFFFFFFF
    size = ops[2].value & 0x1F
    ebox.exec_compute(_base_cycles(ebox))
    _field_store(ebox, pos, size, ops[3], value)


@handler("CMPV", "CMPZV")
def _compare_field(ebox, opcode, ops):
    pos = ops[0].value & 0xFFFFFFFF
    size = ops[1].value & 0x1F
    ebox.exec_compute(_base_cycles(ebox))
    field = _field_fetch(ebox, pos, size, ops[2])
    if opcode.mnemonic == "CMPV" and size:
        field = sign_extend(field, size)
    _, cc = sub_with_flags(field, ops[3].value, 32)
    cc.v = False
    ebox.psl.cc = cc


@handler("FFS", "FFC")
def _find_first(ebox, opcode, ops):
    start = ops[0].value & 0xFFFFFFFF
    size = ops[1].value & 0x1F
    ebox.exec_compute(_base_cycles(ebox))
    field = _field_fetch(ebox, start, size, ops[2])
    if opcode.mnemonic == "FFC":
        field = (~field) & ((1 << size) - 1) if size else 0
    position = start + size  # default: not found
    found = False
    for bit in range(size):
        if field & (1 << bit):
            position = start + bit
            found = True
            break
    ebox.psl.cc.z = not found
    ebox.psl.cc.n = ebox.psl.cc.v = ebox.psl.cc.c = False
    ebox.store(ops[3], position & 0xFFFFFFFF)


@handler("BBS", "BBC", "BBSS", "BBCS", "BBSC", "BBCC", "BBSSI", "BBCCI")
def _bit_branch(ebox, opcode, ops):
    pos = ops[0].value & 0xFFFFFFFF
    base = ops[1]
    if base.is_register:
        pos &= 0x1F
    ebox.exec_compute(_base_cycles(ebox))
    bit = _field_fetch(ebox, pos, 1, base)
    mnemonic = opcode.mnemonic
    branch_on_set = mnemonic[2] == "S"
    taken = bool(bit) == branch_on_set
    if len(mnemonic) >= 4 and mnemonic[3] in ("S", "C"):
        new_bit = 1 if mnemonic[3] == "S" else 0
        _field_store(ebox, pos, 1, base, new_bit)
    ebox.record_branch(taken)
    ebox.branch_with_displacement(taken)


# ---------------------------------------------------------------------------
# floating point (FPA-assisted)
# ---------------------------------------------------------------------------


def _float_cc(ebox, value: float) -> None:
    ebox.psl.cc.n = value < 0
    ebox.psl.cc.z = value == 0
    ebox.psl.cc.v = False
    ebox.psl.cc.c = False


def _float_binary(ebox, ops, combine):
    a = f_floating_decode(ops[0].value)
    b = f_floating_decode(ops[1].value)
    ebox.exec_compute(_base_cycles(ebox))
    result = combine(a, b)
    _float_cc(ebox, result)
    ebox.store(ops[-1], f_floating_encode(result))


@handler("ADDF2", "ADDF3")
def _float_add(ebox, opcode, ops):
    _float_binary(ebox, ops, lambda a, b: b + a)


@handler("SUBF2", "SUBF3")
def _float_sub(ebox, opcode, ops):
    _float_binary(ebox, ops, lambda a, b: b - a)


@handler("MULF2", "MULF3")
def _float_mul(ebox, opcode, ops):
    _float_binary(ebox, ops, lambda a, b: b * a)


@handler("DIVF2", "DIVF3")
def _float_div(ebox, opcode, ops):
    def divide(a, b):
        if a == 0.0:
            ebox.events.arithmetic_exceptions += 1
            return 0.0
        return b / a

    _float_binary(ebox, ops, divide)


@handler("MOVF")
def _float_move(ebox, opcode, ops):
    ebox.exec_compute(_base_cycles(ebox))
    _float_cc(ebox, f_floating_decode(ops[0].value))
    ebox.store(ops[1], ops[0].value)


@handler("MNEGF")
def _float_negate(ebox, opcode, ops):
    value = -f_floating_decode(ops[0].value)
    ebox.exec_compute(_base_cycles(ebox))
    _float_cc(ebox, value)
    ebox.store(ops[1], f_floating_encode(value))


@handler("CMPF")
def _float_compare(ebox, opcode, ops):
    a = f_floating_decode(ops[0].value)
    b = f_floating_decode(ops[1].value)
    ebox.exec_compute(_base_cycles(ebox))
    ebox.psl.cc.n = a < b
    ebox.psl.cc.z = a == b
    ebox.psl.cc.v = ebox.psl.cc.c = False


@handler("TSTF")
def _float_test(ebox, opcode, ops):
    ebox.exec_compute(_base_cycles(ebox))
    _float_cc(ebox, f_floating_decode(ops[0].value))


@handler("CVTBF", "CVTWF", "CVTLF")
def _int_to_float(ebox, opcode, ops):
    bits = _bits(ops[0].dtype)
    value = float(to_signed(sign_extend(ops[0].value, bits), 32))
    ebox.exec_compute(_base_cycles(ebox))
    _float_cc(ebox, value)
    ebox.store(ops[1], f_floating_encode(value))


@handler("CVTFB", "CVTFW", "CVTFL", "CVTRFL")
def _float_to_int(ebox, opcode, ops):
    value = f_floating_decode(ops[0].value)
    ebox.exec_compute(_base_cycles(ebox))
    if opcode.mnemonic == "CVTRFL":
        converted = int(round(value))
    else:
        converted = int(value)  # truncate toward zero
    bits = _bits(ops[1].dtype)
    result = truncate(converted, bits)
    ebox.psl.cc.set_nz(result, bits)
    limit = 1 << (bits - 1)
    ebox.psl.cc.v = not (-limit <= converted < limit)
    ebox.store(ops[1], result)


@handler("ACBF")
def _float_add_compare_branch(ebox, opcode, ops):
    limit = f_floating_decode(ops[0].value)
    addend = f_floating_decode(ops[1].value)
    index = f_floating_decode(ops[2].value) + addend
    ebox.exec_compute(_base_cycles(ebox))
    _float_cc(ebox, index)
    ebox.store(ops[2], f_floating_encode(index))
    taken = index <= limit if addend >= 0 else index >= limit
    ebox.record_branch(taken)
    ebox.branch_with_displacement(taken)


@handler("POLYF")
def _polynomial_evaluate(ebox, opcode, ops):
    """POLYF: Horner evaluation of a degree-d polynomial whose
    coefficients live in a memory table — a per-degree multiply-add loop
    through the FPA."""
    argument = f_floating_decode(ops[0].value)
    degree = ops[1].value & 0x1F
    table = ops[2].address
    ebox.exec_compute(_base_cycles(ebox))
    per_item = _per_item(ebox)
    result = f_floating_decode(ebox.exec_read(table, 4))
    for term in range(degree):
        coefficient = f_floating_decode(
            ebox.exec_read((table + 4 * (term + 1)) & 0xFFFFFFFF, 4)
        )
        ebox.exec_loop(per_item)
        result = result * argument + coefficient
    _float_cc(ebox, result)
    ebox.regs.write(0, f_floating_encode(result))
    ebox.regs.write(1, 0)
    ebox.regs.write(2, 0)
    ebox.regs.write(3, (table + 4 * (degree + 1)) & 0xFFFFFFFF)


@handler("EMODF")
def _extended_modulus(ebox, opcode, ops):
    """EMODF: extended-precision multiply, separating the integer and
    fraction parts of the product."""
    multiplier = f_floating_decode(ops[0].value)
    extension = ops[1].value & 0xFF  # extra multiplier fraction bits
    multiplicand = f_floating_decode(ops[2].value)
    ebox.exec_compute(_base_cycles(ebox))
    product = multiplier * multiplicand * (1.0 + extension / 65536.0 / 256.0)
    integer_part = int(product)
    fraction = product - integer_part
    ebox.psl.cc.n = product < 0
    ebox.psl.cc.z = product == 0
    ebox.psl.cc.v = not (-(1 << 31) <= integer_part < (1 << 31))
    ebox.store(ops[3], truncate(integer_part, 32))
    ebox.store(ops[4], f_floating_encode(fraction))


# ---------------------------------------------------------------------------
# procedure call / return, register push / pop
# ---------------------------------------------------------------------------

_SAVED_MASK_S_BIT = 1 << 15  # our frame's "called with CALLS" flag


def _push_call_frame(ebox, target: int, arg_pointer: int, calls_flag: bool) -> None:
    """Push the CALL frame and transfer control (shared CALLS/CALLG tail)."""
    mask = ebox.exec_read(target, 2) & 0x0FFF
    per_item = _per_item(ebox)
    saved_psw = (mask << 16) | (_SAVED_MASK_S_BIT if calls_flag else 0)
    cc = ebox.psl.cc
    saved_psw |= (1 if cc.c else 0) | (2 if cc.v else 0) | (4 if cc.z else 0) | (8 if cc.n else 0)
    # Registers named in the entry mask, highest first (real stack order).
    for register in range(11, -1, -1):
        if mask & (1 << register):
            ebox.exec_loop(per_item)
            ebox.push(ebox.regs.read(register))
    ebox.push(ebox.ib.decode_va)  # return PC
    ebox.push(ebox.regs.fp)
    ebox.push(ebox.regs.ap)
    ebox.push(saved_psw)
    ebox.push(0)  # condition handler
    ebox.regs.fp = ebox.regs.sp
    ebox.regs.ap = arg_pointer
    ebox.record_branch(True)
    ebox.jump((target + 2) & 0xFFFFFFFF)


@handler("CALLS")
def _call_with_stack(ebox, opcode, ops):
    count = ops[0].value & 0xFF
    ebox.exec_compute(_base_cycles(ebox))
    ebox.push(count)
    _push_call_frame(ebox, ops[1].address, arg_pointer=ebox.regs.sp, calls_flag=True)


@handler("CALLG")
def _call_general(ebox, opcode, ops):
    ebox.exec_compute(_base_cycles(ebox))
    _push_call_frame(ebox, ops[1].address, arg_pointer=ops[0].address, calls_flag=False)


@handler("RET")
def _return_procedure(ebox, opcode, ops):
    ebox.exec_compute(_base_cycles(ebox))
    frame = ebox.regs.fp
    ebox.regs.sp = frame
    _handler_slot = ebox.pop()  # condition handler
    saved_psw = ebox.pop()
    ebox.regs.ap = ebox.pop()
    ebox.regs.fp = ebox.pop()
    return_pc = ebox.pop()
    mask = (saved_psw >> 16) & 0x0FFF
    per_item = _per_item(ebox)
    for register in range(0, 12):
        if mask & (1 << register):
            ebox.exec_loop(per_item)
            ebox.regs.write(register, ebox.pop())
    if saved_psw & _SAVED_MASK_S_BIT:
        count = ebox.exec_read(ebox.regs.sp, 4) & 0xFF
        ebox.regs.sp = (ebox.regs.sp + 4 * (count + 1)) & 0xFFFFFFFF
    cc = ebox.psl.cc
    cc.c, cc.v, cc.z, cc.n = (
        bool(saved_psw & 1),
        bool(saved_psw & 2),
        bool(saved_psw & 4),
        bool(saved_psw & 8),
    )
    ebox.record_branch(True)
    ebox.jump(return_pc)


@handler("PUSHR")
def _push_registers(ebox, opcode, ops):
    mask = ops[0].value & 0x7FFF
    ebox.exec_compute(_base_cycles(ebox))
    per_item = _per_item(ebox)
    for register in range(14, -1, -1):
        if mask & (1 << register):
            ebox.exec_loop(per_item)
            ebox.push(ebox.regs.read(register))


@handler("POPR")
def _pop_registers(ebox, opcode, ops):
    mask = ops[0].value & 0x7FFF
    ebox.exec_compute(_base_cycles(ebox))
    per_item = _per_item(ebox)
    for register in range(0, 15):
        if mask & (1 << register):
            ebox.exec_loop(per_item)
            ebox.regs.write(register, ebox.pop())


# ---------------------------------------------------------------------------
# system instructions
# ---------------------------------------------------------------------------


@handler("HALT")
def _halt(ebox, opcode, ops):
    ebox.exec_compute(1)
    ebox.halted = True


@handler("CHMK", "CHME")
def _change_mode(ebox, opcode, ops):
    code = sign_extend(ops[0].value, 16)
    ebox.exec_compute(_base_cycles(ebox))
    target_mode = AccessMode.KERNEL if opcode.mnemonic == "CHMK" else AccessMode.EXECUTIVE
    saved_psl = ebox.psl.pack()
    return_pc = ebox.ib.decode_va
    ebox.switch_mode(target_mode)
    ebox.push(saved_psl)
    ebox.push(return_pc)
    ebox.push(code)
    vector = 0
    if ebox.machine is not None:
        vector = ebox.machine.scb_vector(opcode.mnemonic.lower())
    ebox.record_branch(True)
    ebox.jump(vector)


@handler("REI")
def _return_from_exception(ebox, opcode, ops):
    ebox.exec_compute(_base_cycles(ebox))
    return_pc = ebox.pop()
    new_psl = ebox.pop()
    target_mode = AccessMode((new_psl >> 24) & 3)
    ebox.switch_mode(target_mode)
    ebox.psl.unpack(new_psl)
    # switch_mode already updated current_mode/stack; unpack restored the
    # same mode bits, so state is coherent.
    ebox.record_branch(True)
    ebox.jump(return_pc)
    if ebox.machine is not None:
        ebox.machine.after_rei()


# PCB layout (longword offsets): 0..13 = R0..R13, 14..17 = KSP/ESP/SSP/USP,
# 18 = PC, 19 = PSL.
_PCB_SP_BASE = 14
_PCB_PC = 18
_PCB_PSL = 19


@handler("SVPCTX")
def _save_process_context(ebox, opcode, ops):
    """Save the current process context.

    As on the real VAX, SVPCTX *pops the PC and PSL that the interrupt or
    exception pushed* from the current stack into the PCB — that is what
    makes LDPCTX+REI resume the interrupted code directly.
    """
    ebox.exec_compute(_base_cycles(ebox))
    pcb = ebox.pr.get(PR_PCBB, 0)
    per_item = _per_item(ebox)
    saved_pc = ebox.pop()
    saved_psl = ebox.pop()
    # Snapshot general registers and the four per-mode stack pointers.
    ebox.mode_sps[int(ebox.psl.current_mode)] = ebox.regs.sp
    for index in range(14):
        ebox.exec_loop(per_item)
        ebox.exec_write_physical((pcb + 4 * index) & 0xFFFFFFFF, 4, ebox.regs.read(index))
    for mode in range(4):
        ebox.exec_write_physical((pcb + 4 * (_PCB_SP_BASE + mode)) & 0xFFFFFFFF, 4, ebox.mode_sps[mode])
    ebox.exec_write_physical((pcb + 4 * _PCB_PC) & 0xFFFFFFFF, 4, saved_pc)
    ebox.exec_write_physical((pcb + 4 * _PCB_PSL) & 0xFFFFFFFF, 4, saved_psl)


@handler("LDPCTX")
def _load_process_context(ebox, opcode, ops):
    """Load a process context from the PCB named by the PCBB register.

    Flushes the process half of the TB (the paper's Section 3.4 points at
    context-switch headway as the TB "flush interval") and leaves the
    saved PC/PSL on the kernel stack for the REI that follows.
    """
    ebox.exec_compute(_base_cycles(ebox))
    pcb = ebox.pr.get(PR_PCBB, 0)
    per_item = _per_item(ebox)
    for index in range(14):
        ebox.exec_loop(per_item)
        ebox.regs.write(index, ebox.exec_read_physical((pcb + 4 * index) & 0xFFFFFFFF, 4))
    for mode in range(4):
        ebox.mode_sps[mode] = ebox.exec_read_physical(
            (pcb + 4 * (_PCB_SP_BASE + mode)) & 0xFFFFFFFF, 4
        )
    saved_pc = ebox.exec_read_physical((pcb + 4 * _PCB_PC) & 0xFFFFFFFF, 4)
    saved_psl = ebox.exec_read_physical((pcb + 4 * _PCB_PSL) & 0xFFFFFFFF, 4)
    # The kernel stack becomes the loaded process's kernel stack.
    ebox.regs.sp = ebox.mode_sps[int(ebox.psl.current_mode)]
    ebox.memory.tb.flush_process()
    if ebox.machine is not None:
        ebox.machine.on_context_load(pcb)
    ebox.events.context_switches += 1
    ebox.push(saved_psl)
    ebox.push(saved_pc)


# Processor register numbers (the architectural ones we use).
PR_KSP = 0
PR_PCBB = 16
PR_SCBB = 17
PR_IPL = 18
PR_SIRR = 20
PR_SISR = 21
PR_TBIA = 57
PR_TBIS = 58


@handler("MTPR")
def _move_to_processor_register(ebox, opcode, ops):
    value = ops[0].value
    register = ops[1].value & 0xFF
    ebox.exec_compute(_base_cycles(ebox))
    if register == PR_TBIA:
        ebox.memory.tb.flush_all()
        return
    if register == PR_TBIS:
        ebox.memory.tb.invalidate(value)
        return
    if register == PR_IPL:
        ebox.psl.ipl = value & 0x1F
        return
    ebox.pr[register] = value & 0xFFFFFFFF
    if register == PR_SIRR:
        ebox.events.software_interrupt_requests += 1
        if ebox.machine is not None:
            ebox.machine.request_software_interrupt(value & 0xF)
    elif ebox.machine is not None:
        # Implementation-defined processor registers: the OS layer may
        # attach behaviour (scheduler pick, process block/wake).
        ebox.machine.on_mtpr(register, value)


@handler("MFPR")
def _move_from_processor_register(ebox, opcode, ops):
    register = ops[0].value & 0xFF
    ebox.exec_compute(_base_cycles(ebox))
    if register == PR_IPL:
        value = ebox.psl.ipl
    else:
        value = ebox.pr.get(register, 0)
    ebox.psl.cc.set_nz(value, 32)
    ebox.store(ops[1], value)


@handler("PROBER", "PROBEW")
def _probe(ebox, opcode, ops):
    base = ops[2].address
    ebox.exec_compute(_base_cycles(ebox))
    try:
        entry = ebox.memory.pte_lookup(base)
        accessible = entry.valid and (opcode.mnemonic == "PROBER" or entry.writable)
    except Exception:
        accessible = False
    # Z set when the access would NOT be allowed (branch-on-equal fails).
    ebox.psl.cc.z = not accessible
    ebox.psl.cc.n = ebox.psl.cc.v = ebox.psl.cc.c = False


@handler("INSQUE")
def _insert_queue(ebox, opcode, ops):
    entry = ops[0].address
    predecessor = ops[1].address
    ebox.exec_compute(_base_cycles(ebox))
    successor = ebox.exec_read(predecessor, 4)
    ebox.exec_write(entry, 4, successor)  # entry.flink
    ebox.exec_write((entry + 4) & 0xFFFFFFFF, 4, predecessor)  # entry.blink
    ebox.exec_write(predecessor, 4, entry)  # pred.flink
    ebox.exec_write((successor + 4) & 0xFFFFFFFF, 4, entry)  # succ.blink
    ebox.psl.cc.z = successor == predecessor  # queue was empty


@handler("REMQUE")
def _remove_queue(ebox, opcode, ops):
    entry = ops[0].address
    ebox.exec_compute(_base_cycles(ebox))
    successor = ebox.exec_read(entry, 4)
    predecessor = ebox.exec_read((entry + 4) & 0xFFFFFFFF, 4)
    ebox.exec_write(predecessor, 4, successor)
    ebox.exec_write((successor + 4) & 0xFFFFFFFF, 4, predecessor)
    ebox.psl.cc.z = successor == predecessor  # queue now empty
    ebox.store(ops[1], entry)


@handler("BISPSW")
def _bis_psw(ebox, opcode, ops):
    mask = ops[0].value & 0xF
    ebox.exec_compute(_base_cycles(ebox))
    cc = ebox.psl.cc
    cc.c = cc.c or bool(mask & 1)
    cc.v = cc.v or bool(mask & 2)
    cc.z = cc.z or bool(mask & 4)
    cc.n = cc.n or bool(mask & 8)


@handler("BICPSW")
def _bic_psw(ebox, opcode, ops):
    mask = ops[0].value & 0xF
    ebox.exec_compute(_base_cycles(ebox))
    cc = ebox.psl.cc
    cc.c = cc.c and not (mask & 1)
    cc.v = cc.v and not (mask & 2)
    cc.z = cc.z and not (mask & 4)
    cc.n = cc.n and not (mask & 8)


# ---------------------------------------------------------------------------
# character strings
# ---------------------------------------------------------------------------


def _string_move(ebox, length: int, src: int, dst: int, fill: int = 0, src_len=None) -> None:
    """The MOVC copy loop: longword moves with writes spaced to dodge the
    write buffer, byte moves for the tail."""
    per_item = _per_item(ebox)
    copy_len = length if src_len is None else min(length, src_len)
    offset = 0
    while copy_len - offset >= 4:
        value = ebox.exec_read((src + offset) & 0xFFFFFFFF, 4)
        ebox.exec_loop(per_item)
        ebox.exec_write((dst + offset) & 0xFFFFFFFF, 4, value)
        offset += 4
    while offset < copy_len:
        value = ebox.exec_read((src + offset) & 0xFFFFFFFF, 1)
        ebox.exec_loop(max(1, per_item - 2))
        ebox.exec_write((dst + offset) & 0xFFFFFFFF, 1, value)
        offset += 1
    while offset < length:  # MOVC5 fill
        ebox.exec_loop(max(1, per_item - 2))
        ebox.exec_write((dst + offset) & 0xFFFFFFFF, 1, fill)
        offset += 1


@handler("MOVC3")
def _movc3(ebox, opcode, ops):
    length = ops[0].value & 0xFFFF
    src, dst = ops[1].address, ops[2].address
    ebox.exec_compute(_base_cycles(ebox))
    _string_move(ebox, length, src, dst)
    regs = ebox.regs
    regs.write(0, 0)
    regs.write(1, (src + length) & 0xFFFFFFFF)
    regs.write(2, 0)
    regs.write(3, (dst + length) & 0xFFFFFFFF)
    regs.write(4, 0)
    regs.write(5, 0)
    ebox.psl.cc.set_nz(0, 32)


@handler("MOVC5")
def _movc5(ebox, opcode, ops):
    src_len = ops[0].value & 0xFFFF
    src = ops[1].address
    fill = ops[2].value & 0xFF
    dst_len = ops[3].value & 0xFFFF
    dst = ops[4].address
    ebox.exec_compute(_base_cycles(ebox))
    _string_move(ebox, dst_len, src, dst, fill=fill, src_len=src_len)
    _, cc = sub_with_flags(src_len, dst_len, 16)
    ebox.psl.cc = cc
    ebox.regs.write(0, max(0, src_len - dst_len))
    ebox.regs.write(1, (src + min(src_len, dst_len)) & 0xFFFFFFFF)
    ebox.regs.write(3, (dst + dst_len) & 0xFFFFFFFF)


def _string_compare(ebox, len1: int, addr1: int, len2: int, addr2: int) -> None:
    per_item = _per_item(ebox)
    count = min(len1, len2)
    byte1 = byte2 = 0
    index = 0
    while index < count:
        if index % 4 == 0:
            remaining = min(4, count - index)
            word1 = ebox.exec_read((addr1 + index) & 0xFFFFFFFF, remaining)
            word2 = ebox.exec_read((addr2 + index) & 0xFFFFFFFF, remaining)
        shift = 8 * (index % 4)
        byte1 = (word1 >> shift) & 0xFF
        byte2 = (word2 >> shift) & 0xFF
        ebox.exec_loop(per_item)
        if byte1 != byte2:
            break
        index += 1
    if index >= count:
        _, cc = sub_with_flags(len1, len2, 16)
    else:
        _, cc = sub_with_flags(byte1, byte2, 8)
    ebox.psl.cc = cc
    ebox.regs.write(0, (len1 - index) & 0xFFFF)
    ebox.regs.write(1, (addr1 + index) & 0xFFFFFFFF)
    ebox.regs.write(2, (len2 - index) & 0xFFFF)
    ebox.regs.write(3, (addr2 + index) & 0xFFFFFFFF)


@handler("CMPC3")
def _cmpc3(ebox, opcode, ops):
    length = ops[0].value & 0xFFFF
    ebox.exec_compute(_base_cycles(ebox))
    _string_compare(ebox, length, ops[1].address, length, ops[2].address)


@handler("CMPC5")
def _cmpc5(ebox, opcode, ops):
    ebox.exec_compute(_base_cycles(ebox))
    _string_compare(
        ebox,
        ops[0].value & 0xFFFF,
        ops[1].address,
        ops[3].value & 0xFFFF,
        ops[4].address,
    )


def _string_scan(ebox, char: int, length: int, addr: int, want_match: bool):
    """Shared LOCC/SKPC loop; returns the index found or ``length``."""
    per_item = _per_item(ebox)
    index = 0
    word = 0
    while index < length:
        if index % 4 == 0:
            word = ebox.exec_read((addr + index) & 0xFFFFFFFF, min(4, length - index))
        byte = (word >> (8 * (index % 4))) & 0xFF
        ebox.exec_loop(per_item)
        if (byte == char) == want_match:
            break
        index += 1
    return index


@handler("LOCC", "SKPC")
def _locate_character(ebox, opcode, ops):
    char = ops[0].value & 0xFF
    length = ops[1].value & 0xFFFF
    addr = ops[2].address
    ebox.exec_compute(_base_cycles(ebox))
    index = _string_scan(ebox, char, length, addr, want_match=(opcode.mnemonic == "LOCC"))
    ebox.regs.write(0, (length - index) & 0xFFFF)
    ebox.regs.write(1, (addr + index) & 0xFFFFFFFF)
    ebox.psl.cc.z = index >= length

@handler("SCANC", "SPANC")
def _scan_characters(ebox, opcode, ops):
    length = ops[0].value & 0xFFFF
    addr = ops[1].address
    table = ops[2].address
    mask = ops[3].value & 0xFF
    ebox.exec_compute(_base_cycles(ebox))
    per_item = _per_item(ebox)
    index = 0
    word = 0
    while index < length:
        if index % 4 == 0:
            word = ebox.exec_read((addr + index) & 0xFFFFFFFF, min(4, length - index))
        byte = (word >> (8 * (index % 4))) & 0xFF
        table_entry = ebox.exec_read((table + byte) & 0xFFFFFFFF, 1)
        ebox.exec_loop(per_item)
        hit = bool(table_entry & mask)
        if hit == (opcode.mnemonic == "SCANC"):
            break
        index += 1
    ebox.regs.write(0, (length - index) & 0xFFFF)
    ebox.regs.write(1, (addr + index) & 0xFFFFFFFF)
    ebox.psl.cc.z = index >= length


@handler("MOVTC")
def _move_translated(ebox, opcode, ops):
    """MOVTC: copy with per-byte translation through a 256-byte table."""
    src_len = ops[0].value & 0xFFFF
    src = ops[1].address
    fill = ops[2].value & 0xFF
    table = ops[3].address
    dst_len = ops[4].value & 0xFFFF
    dst = ops[5].address
    ebox.exec_compute(_base_cycles(ebox))
    per_item = _per_item(ebox)
    for index in range(dst_len):
        if index < src_len:
            byte = ebox.exec_read((src + index) & 0xFFFFFFFF, 1)
            translated = ebox.exec_read((table + byte) & 0xFFFFFFFF, 1)
        else:
            translated = fill
        ebox.exec_loop(per_item)
        ebox.exec_write((dst + index) & 0xFFFFFFFF, 1, translated)
    _, cc = sub_with_flags(src_len, dst_len, 16)
    ebox.psl.cc = cc
    ebox.regs.write(0, max(0, src_len - dst_len))
    ebox.regs.write(1, (src + min(src_len, dst_len)) & 0xFFFFFFFF)
    ebox.regs.write(3, table & 0xFFFFFFFF)
    ebox.regs.write(5, (dst + dst_len) & 0xFFFFFFFF)


@handler("MATCHC")
def _match_characters(ebox, opcode, ops):
    """MATCHC: find a substring; Z set when the pattern is found."""
    pattern_len = ops[0].value & 0xFFFF
    pattern = ops[1].address
    string_len = ops[2].value & 0xFFFF
    string = ops[3].address
    ebox.exec_compute(_base_cycles(ebox))
    per_item = _per_item(ebox)
    pattern_bytes = bytes(
        ebox.exec_read((pattern + i) & 0xFFFFFFFF, 1) for i in range(pattern_len)
    )
    found_at = None
    limit = string_len - pattern_len
    index = 0
    while index <= limit:
        ebox.exec_loop(per_item)
        window = bytes(
            ebox.exec_read((string + index + j) & 0xFFFFFFFF, 1)
            for j in range(pattern_len)
        )
        if window == pattern_bytes:
            found_at = index
            break
        index += 1
    ebox.psl.cc.z = found_at is not None
    if found_at is not None:
        ebox.regs.write(0, 0)
        ebox.regs.write(1, (pattern + pattern_len) & 0xFFFFFFFF)
        ebox.regs.write(3, (string + found_at + pattern_len) & 0xFFFFFFFF)
    else:
        ebox.regs.write(0, pattern_len)
        ebox.regs.write(1, pattern & 0xFFFFFFFF)
        ebox.regs.write(3, (string + string_len) & 0xFFFFFFFF)


@handler("CRC")
def _cyclic_redundancy(ebox, opcode, ops):
    """CRC: table-driven cyclic redundancy check over a byte string."""
    table = ops[0].address
    initial = ops[1].value & 0xFFFFFFFF
    length = ops[2].value & 0xFFFF
    stream = ops[3].address
    ebox.exec_compute(_base_cycles(ebox))
    per_item = _per_item(ebox)
    crc = initial
    for index in range(length):
        byte = ebox.exec_read((stream + index) & 0xFFFFFFFF, 1)
        entry_index = (crc ^ byte) & 0x0F
        entry = ebox.exec_read((table + 4 * entry_index) & 0xFFFFFFFF, 4)
        ebox.exec_loop(per_item)
        crc = ((crc >> 4) ^ entry) & 0xFFFFFFFF
        entry_index = (crc ^ (byte >> 4)) & 0x0F
        entry = ebox.exec_read((table + 4 * entry_index) & 0xFFFFFFFF, 4)
        crc = ((crc >> 4) ^ entry) & 0xFFFFFFFF
    ebox.psl.cc.set_nz(crc, 32)
    ebox.regs.write(0, crc)
    ebox.regs.write(1, 0)
    ebox.regs.write(2, 0)
    ebox.regs.write(3, (stream + length) & 0xFFFFFFFF)


# ---------------------------------------------------------------------------
# packed decimal
# ---------------------------------------------------------------------------


def _read_packed(ebox, digits: int, addr: int) -> int:
    data = bytearray()
    for offset in range(packed_size(digits)):
        data.append(ebox.exec_read((addr + offset) & 0xFFFFFFFF, 1))
        ebox.exec_loop(1)
    return packed_decimal_decode(bytes(data), digits)


def _write_packed(ebox, value: int, digits: int, addr: int) -> None:
    data = packed_decimal_encode(value, digits)
    for offset, byte in enumerate(data):
        ebox.exec_loop(1)
        ebox.exec_write((addr + offset) & 0xFFFFFFFF, 1, byte)


def _decimal_cc(ebox, value: int) -> None:
    ebox.psl.cc.n = value < 0
    ebox.psl.cc.z = value == 0
    ebox.psl.cc.v = False
    ebox.psl.cc.c = False


@handler("ADDP4", "SUBP4")
def _decimal_add(ebox, opcode, ops):
    src_digits = ops[0].value & 0x1F
    dst_digits = ops[2].value & 0x1F
    ebox.exec_compute(_base_cycles(ebox))
    src = _read_packed(ebox, src_digits, ops[1].address)
    dst = _read_packed(ebox, dst_digits, ops[3].address)
    per_item = _per_item(ebox)
    ebox.exec_loop(per_item * max(1, dst_digits // 2))
    result = dst + src if opcode.mnemonic == "ADDP4" else dst - src
    limit = 10 ** dst_digits
    if abs(result) >= limit:
        result %= limit if result >= 0 else -limit
        ebox.psl.cc.v = True
        ebox.events.arithmetic_exceptions += 1
    _write_packed(ebox, result, dst_digits, ops[3].address)
    _decimal_cc(ebox, result)


@handler("MOVP")
def _decimal_move(ebox, opcode, ops):
    digits = ops[0].value & 0x1F
    ebox.exec_compute(_base_cycles(ebox))
    value = _read_packed(ebox, digits, ops[1].address)
    _write_packed(ebox, value, digits, ops[2].address)
    _decimal_cc(ebox, value)


@handler("CMPP3")
def _decimal_compare(ebox, opcode, ops):
    digits = ops[0].value & 0x1F
    ebox.exec_compute(_base_cycles(ebox))
    a = _read_packed(ebox, digits, ops[1].address)
    b = _read_packed(ebox, digits, ops[2].address)
    ebox.psl.cc.n = a < b
    ebox.psl.cc.z = a == b
    ebox.psl.cc.v = ebox.psl.cc.c = False


@handler("CVTLP")
def _convert_long_to_packed(ebox, opcode, ops):
    value = to_signed(ops[0].value, 32)
    digits = ops[1].value & 0x1F
    ebox.exec_compute(_base_cycles(ebox))
    ebox.exec_loop(_per_item(ebox) * max(1, digits // 2))
    limit = 10 ** digits
    if abs(value) >= limit:
        value = value % limit if value >= 0 else -(-value % limit)
        ebox.psl.cc.v = True
        ebox.events.arithmetic_exceptions += 1
    _write_packed(ebox, value, digits, ops[2].address)
    _decimal_cc(ebox, value)


@handler("CVTPL")
def _convert_packed_to_long(ebox, opcode, ops):
    digits = ops[0].value & 0x1F
    ebox.exec_compute(_base_cycles(ebox))
    value = _read_packed(ebox, digits, ops[1].address)
    ebox.exec_loop(_per_item(ebox) * max(1, digits // 2))
    result = truncate(value, 32)
    _decimal_cc(ebox, to_signed(result, 32))
    ebox.store(ops[2], result)


@handler("ASHP")
def _decimal_shift(ebox, opcode, ops):
    count = to_signed(ops[0].value, 8)
    src_digits = ops[1].value & 0x1F
    dst_digits = ops[4].value & 0x1F
    ebox.exec_compute(_base_cycles(ebox))
    value = _read_packed(ebox, src_digits, ops[2].address)
    ebox.exec_loop(_per_item(ebox) * max(1, abs(count)))
    shifted = value * (10 ** count) if count >= 0 else int(value / (10 ** -count))
    limit = 10 ** dst_digits
    if abs(shifted) >= limit:
        shifted = shifted % limit if shifted >= 0 else -(-shifted % limit)
        ebox.psl.cc.v = True
    _write_packed(ebox, shifted, dst_digits, ops[5].address)
    _decimal_cc(ebox, shifted)

"""I-Decode specifier decoding and the operand references handed to
execute-phase semantics.

``decode_specifier`` consumes specifier bytes through a caller-supplied
byte source (the EBOX's charged IB consumer) and resolves the addressing
mode, including the PC pseudo-modes (immediate, absolute, relative) and
index prefixes.  :class:`OperandRef` carries everything the execute phase
needs: the loaded value for read/modify operands, the effective address
for memory operands, and the control-store routine where a result store
must charge its write cycle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.isa.datatypes import DataType, sign_extend
from repro.isa.specifiers import AccessType, AddressingMode, DecodedSpecifier, OperandSpec
from repro.ucode.control_store import Routine

_PC = 15

_BASE_MODES = {
    0x5: AddressingMode.REGISTER,
    0x6: AddressingMode.REGISTER_DEFERRED,
    0x7: AddressingMode.AUTODECREMENT,
    0x8: AddressingMode.AUTOINCREMENT,
    0x9: AddressingMode.AUTOINCREMENT_DEFERRED,
    0xA: AddressingMode.BYTE_DISPLACEMENT,
    0xB: AddressingMode.BYTE_DISPLACEMENT_DEFERRED,
    0xC: AddressingMode.WORD_DISPLACEMENT,
    0xD: AddressingMode.WORD_DISPLACEMENT_DEFERRED,
    0xE: AddressingMode.LONG_DISPLACEMENT,
    0xF: AddressingMode.LONG_DISPLACEMENT_DEFERRED,
}

_PC_MODES = {
    0x8: AddressingMode.IMMEDIATE,
    0x9: AddressingMode.ABSOLUTE,
    0xA: AddressingMode.BYTE_RELATIVE,
    0xB: AddressingMode.BYTE_RELATIVE_DEFERRED,
    0xC: AddressingMode.WORD_RELATIVE,
    0xD: AddressingMode.WORD_RELATIVE_DEFERRED,
    0xE: AddressingMode.LONG_RELATIVE,
    0xF: AddressingMode.LONG_RELATIVE_DEFERRED,
}


class IllegalSpecifier(Exception):
    """An addressing mode forbidden for the operand's access type."""


def decode_specifier(take: Callable[[int], bytes], dtype: DataType) -> DecodedSpecifier:
    """Decode one operand specifier, consuming bytes via ``take``.

    ``dtype`` sizes immediate extensions.  Returns a
    :class:`~repro.isa.specifiers.DecodedSpecifier`.
    """
    first = take(1)[0]
    length = 1
    nibble = first >> 4
    low = first & 0xF

    index_register: Optional[int] = None
    if nibble == 0x4:
        index_register = low
        first = take(1)[0]
        length += 1
        nibble = first >> 4
        low = first & 0xF
        if nibble in (0x0, 0x1, 0x2, 0x3, 0x4, 0x5) or (nibble == 0x8 and low == _PC):
            raise IllegalSpecifier("base mode {:#x} cannot follow an index prefix".format(nibble))

    if nibble <= 0x3:
        # Short literal: six bits packed into the specifier byte.
        return DecodedSpecifier(
            mode=AddressingMode.SHORT_LITERAL,
            register=None,
            extension=first & 0x3F,
            length=length,
            index_register=index_register,
        )

    if low == _PC and nibble in _PC_MODES:
        mode = _PC_MODES[nibble]
        if mode is AddressingMode.IMMEDIATE:
            size = _immediate_size(dtype)
            raw = int.from_bytes(take(size), "little")
            return DecodedSpecifier(mode, None, raw, length + size, index_register)
        if mode is AddressingMode.ABSOLUTE:
            raw = int.from_bytes(take(4), "little")
            return DecodedSpecifier(mode, None, raw, length + 4, index_register)
        disp_size = mode.displacement_size
        raw = int.from_bytes(take(disp_size), "little")
        extension = sign_extend(raw, 8 * disp_size)
        return DecodedSpecifier(mode, None, extension, length + disp_size, index_register)

    mode = _BASE_MODES.get(nibble)
    if mode is None:
        raise IllegalSpecifier("unknown specifier byte {:#04x}".format(first))
    disp_size = mode.displacement_size
    extension = 0
    if disp_size:
        raw = int.from_bytes(take(disp_size), "little")
        extension = sign_extend(raw, 8 * disp_size)
    return DecodedSpecifier(mode, low, extension, length + disp_size, index_register)


def _immediate_size(dtype: DataType) -> int:
    if dtype is DataType.QUAD:
        return 8
    if dtype in (DataType.BYTE,):
        return 1
    if dtype is DataType.WORD:
        return 2
    return 4


def expand_float_literal(bits: int) -> float:
    """Expand a 6-bit short literal into its F_floating value.

    The six bits split into a 3-bit exponent and 3-bit fraction, giving
    the values 0.5, 0.5625, ... up to 120.0.
    """
    exponent = (bits >> 3) & 7
    fraction = bits & 7
    return 0.5 * (1.0 + fraction / 8.0) * (2.0 ** exponent)


@dataclass(slots=True)
class OperandRef:
    """A fully processed operand, as the execute phase sees it.

    ``value`` is populated for READ and MODIFY access (raw unsigned form
    of the operand's data type); ``address`` for memory operands;
    ``register`` for register-mode operands.  ``routine`` is the
    specifier microroutine whose WRITE slot a result store charges.
    """

    spec: OperandSpec
    mode: AddressingMode
    register: Optional[int]
    address: Optional[int]
    value: Optional[int]
    routine: Routine
    position_class: str  # 'spec1' | 'spec26'
    is_indexed: bool = False

    @property
    def is_register(self) -> bool:
        return self.mode is AddressingMode.REGISTER

    @property
    def is_memory(self) -> bool:
        return self.address is not None

    @property
    def dtype(self) -> DataType:
        return self.spec.dtype

    @property
    def access(self) -> AccessType:
        return self.spec.access

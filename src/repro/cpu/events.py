"""Direct event counters for things the micro-PC monitor cannot see.

The paper is explicit about the monitor's blind spots: I-stream memory
references are made by hardware, not microcode, so their counts came from
a separate cache study [Clark 83]; branch-taken proportions and some
opcode distinctions came from "other measurements".  This module is the
simulator's stand-in for those companion instruments.  Everything that
*can* come from the histogram does come from the histogram (see
:mod:`repro.core.reduction`); these counters carry only the rest, plus
ground truth used by tests to validate the histogram pipeline.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict


def _counter_minus(current: Counter, baseline: Counter) -> Counter:
    """``current - baseline`` preserving ``current``'s key order.

    Counts only ever grow, so every key of ``baseline`` is present in
    ``current`` and no delta is negative; keys whose count did not change
    are omitted (they contribute nothing to a merge)."""
    delta = Counter()
    for key, value in current.items():
        remaining = value - baseline.get(key, 0)
        if remaining:
            delta[key] = remaining
    return delta


@dataclass
class EventCounters:
    """Ground-truth event counts accumulated by the machine."""

    instructions: int = 0
    #: dynamic opcode execution counts, by mnemonic
    opcode_counts: Counter = field(default_factory=Counter)
    #: branch outcomes by Table 2 class name: (executed, taken)
    branch_executed: Counter = field(default_factory=Counter)
    branch_taken: Counter = field(default_factory=Counter)
    #: operand-specifier occurrences: (position_class, table4_row) -> count
    specifier_counts: Counter = field(default_factory=Counter)
    indexed_specifiers: Counter = field(default_factory=Counter)  # by position class
    branch_displacements: int = 0
    #: instruction-stream size accounting
    instruction_bytes: int = 0
    specifier_bytes: int = 0
    displacement_bytes: int = 0
    #: D-stream reads/writes by Table 5 row label
    reads_by_source: Counter = field(default_factory=Counter)
    writes_by_source: Counter = field(default_factory=Counter)
    #: interrupt / context switch events (Table 7)
    software_interrupt_requests: int = 0
    interrupts_delivered: int = 0
    context_switches: int = 0
    #: exceptions
    page_faults: int = 0
    arithmetic_exceptions: int = 0

    def record_branch(self, class_name: str, taken: bool) -> None:
        self.branch_executed[class_name] += 1
        if taken:
            self.branch_taken[class_name] += 1

    def taken_fraction(self, class_name: str) -> float:
        executed = self.branch_executed[class_name]
        return self.branch_taken[class_name] / executed if executed else 0.0

    def minus(self, baseline: "EventCounters") -> "EventCounters":
        """Counters accumulated since ``baseline`` was copied off.

        The shard-side companion of :meth:`merge_from`: a resumable
        measurement records ``current.minus(baseline)`` per shard, and
        merging the shard deltas in order reconstructs the uninterrupted
        run bit for bit.  Counter keys keep their first-occurrence order
        (plain ``Counter`` subtraction would reorder and sort-drop keys),
        so serialized output is byte-identical too.
        """
        delta = EventCounters()
        for name in self.__dataclass_fields__:
            current = getattr(self, name)
            if isinstance(current, Counter):
                setattr(delta, name, _counter_minus(current, getattr(baseline, name)))
            else:
                setattr(delta, name, current - getattr(baseline, name))
        return delta

    def merge_from(self, other: "EventCounters") -> None:
        """Accumulate another run's counters (composite workloads)."""
        self.instructions += other.instructions
        self.opcode_counts += other.opcode_counts
        self.branch_executed += other.branch_executed
        self.branch_taken += other.branch_taken
        self.specifier_counts += other.specifier_counts
        self.indexed_specifiers += other.indexed_specifiers
        self.branch_displacements += other.branch_displacements
        self.instruction_bytes += other.instruction_bytes
        self.specifier_bytes += other.specifier_bytes
        self.displacement_bytes += other.displacement_bytes
        self.reads_by_source += other.reads_by_source
        self.writes_by_source += other.writes_by_source
        self.software_interrupt_requests += other.software_interrupt_requests
        self.interrupts_delivered += other.interrupts_delivered
        self.context_switches += other.context_switches
        self.page_faults += other.page_faults
        self.arithmetic_exceptions += other.arithmetic_exceptions

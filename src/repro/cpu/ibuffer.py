"""The I-Fetch stage: the 8-byte Instruction Buffer.

"The 8-byte IB makes a cache reference whenever one or more bytes are
empty.  When the requested longword arrives — possibly much later, if a
cache miss — it accepts as many bytes as it has room for then.  Thus the
IB can make repeated references (as many as four) to the same longword"
(Section 4.1).

The IB is hardware: its cache references never execute microcode, so the
micro-PC monitor cannot count them.  They are tallied in :class:`IBStats`
instead — the simulator's stand-in for the separate cache study the paper
cites for its 2.2-references-per-instruction figure.

An I-stream TB miss does not trap; it sets a flag the EBOX discovers only
when it runs out of bytes (Section 2.1), and fetching pauses until the
EBOX refills the TB.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

IB_CAPACITY = 8


@dataclass
class IBStats:
    """I-stream behaviour counters (Section 4.1's numbers)."""

    references: int = 0
    bytes_delivered: int = 0
    redirects: int = 0
    tb_miss_flags: int = 0

    @property
    def bytes_per_reference(self) -> float:
        return self.bytes_delivered / self.references if self.references else 0.0


class InstructionBuffer:
    """8-byte prefetch buffer running in EBOX cycle time.

    The EBOX calls :meth:`run` once per EBOX cycle (the buffer fetches in
    the background), :meth:`try_consume` to take decoded bytes, and
    :meth:`redirect` on taken branches.
    """

    def __init__(self, memory):
        self.memory = memory  # MemorySubsystem
        self.stats = IBStats()
        #: optional repro.obs.trace.Tracer (the EBOX wires this);
        #: consulted only on miss / TB-miss / redirect branches.
        self.tracer = None
        self._bytes = bytearray()
        self._fetch_va = 0
        self._decode_va = 0
        self._fill_wait = 0  # cycles until an outstanding miss delivers
        self._pending_value: Optional[int] = None
        self._pending_va = 0
        self.tb_miss_pending = False
        self._now = 0  # tracks the EBOX cycle clock (advanced by run())
        self._port_cooldown = 0  # cache-port sharing with the EBOX

    # -- control -----------------------------------------------------------

    def redirect(self, va: int) -> None:
        """Flush and start fetching at ``va`` (taken branch / REI / boot)."""
        self._bytes.clear()
        self._fetch_va = va
        self._decode_va = va
        self._fill_wait = 0
        self._pending_value = None
        self.tb_miss_pending = False
        self.stats.redirects += 1
        if self.tracer is not None:
            self.tracer.instant("IFETCH", self._now, "redirect", {"va": va})

    def clear_tb_miss(self) -> None:
        """The EBOX refilled the TB; resume fetching."""
        self.tb_miss_pending = False

    @property
    def decode_va(self) -> int:
        """Virtual address of the next byte the EBOX will consume."""
        return self._decode_va

    @property
    def fetch_va(self) -> int:
        """Virtual address the prefetcher needs next (TB-miss service target)."""
        return self._fetch_va

    @property
    def valid_bytes(self) -> int:
        return len(self._bytes)

    # -- background fetching -------------------------------------------------

    def run(self, cycles: int = 1) -> None:
        """Advance the prefetcher by ``cycles`` EBOX cycles.

        Cycle-exact but batched: runs of cycles in which the prefetcher
        provably does nothing (waiting out a fill, TB-miss paused, or
        buffer full — the overwhelmingly common states) are skipped in
        one arithmetic step instead of being iterated one by one.  Only
        cycles that can issue a cache reference take the per-cycle path,
        so ``_now`` is identical to the unbatched clock at every fetch.
        """
        while cycles > 0:
            if self._fill_wait > 0:
                # Wait out the outstanding miss (or as much as fits).
                step = self._fill_wait if self._fill_wait <= cycles else cycles
                self._now += step
                self._fill_wait -= step
                cycles -= step
                if self._fill_wait == 0 and self._pending_value is not None:
                    self._accept(self._pending_va, self._pending_value)
                    self._pending_value = None
                continue
            if self.tb_miss_pending or len(self._bytes) >= IB_CAPACITY:
                # Paused until the EBOX refills the TB / consumes bytes:
                # nothing can happen for the rest of this batch.
                self._now += cycles
                return
            self._now += 1
            cycles -= 1
            if self._port_cooldown > 0:
                # The IB shares the cache port with EBOX data references;
                # it wins at most every other cycle, which also keeps it
                # from racing arbitrarily far past branch points.
                self._port_cooldown -= 1
                continue
            self._port_cooldown = 1
            value, cache_hit, tb_miss, fill_cycles = self.memory.istream_fetch(
                self._fetch_va, now=self._now
            )
            if tb_miss:
                self.tb_miss_pending = True
                self.stats.tb_miss_flags += 1
                if self.tracer is not None:
                    self.tracer.instant(
                        "IFETCH", self._now, "ifetch tb miss", {"va": self._fetch_va}
                    )
                continue
            self.stats.references += 1
            if cache_hit:
                self._accept(self._fetch_va, value)
            else:
                # Data arrives later — after the SBI transaction (plus
                # any queueing behind concurrent traffic) completes; the
                # IB then accepts as many bytes as it has room for.
                self._pending_va = self._fetch_va
                self._pending_value = value
                self._fill_wait = fill_cycles
                if self.tracer is not None:
                    self.tracer.instant(
                        "IFETCH",
                        self._now,
                        "ifetch miss",
                        {"va": self._fetch_va, "fill_cycles": fill_cycles},
                    )

    def _accept(self, va: int, longword: int) -> None:
        """Accept bytes from the longword containing ``va`` into the IB."""
        offset = va & 3
        available = 4 - offset
        room = IB_CAPACITY - len(self._bytes)
        take = min(available, room)
        if take <= 0:
            return
        data = longword.to_bytes(4, "little")[offset : offset + take]
        self._bytes.extend(data)
        self._fetch_va += take
        self.stats.bytes_delivered += take

    # -- the EBOX side ---------------------------------------------------------

    def try_consume(self, count: int) -> Optional[bytes]:
        """Take ``count`` bytes if available; None means IB stall."""
        if len(self._bytes) < count:
            return None
        taken = bytes(self._bytes[:count])
        del self._bytes[:count]
        self._decode_va += count
        return taken

    def peek(self, count: int) -> Optional[bytes]:
        """Look at the next ``count`` bytes without consuming them."""
        if len(self._bytes) < count:
            return None
        return bytes(self._bytes[:count])

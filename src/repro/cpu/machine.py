"""The assembled VAX-11/780 — Figure 1 in code.

Two major subsystems: the CPU pipeline (I-Fetch / I-Decode / EBOX, with
the EBOX's control store tapped by the micro-PC monitor) and the memory
subsystem (TB, write-through cache, write buffer, SBI, 8 MB of memory).

The machine exposes the hook surface the operating-system layer plugs
into: interrupt sources, the SCB vector table, the pager, and context
switching.  Defaults are self-contained so the bare machine runs user
programs without an OS (the quickstart example does exactly that).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.cpu.ebox import EBox
from repro.cpu.events import EventCounters
from repro.memory.pagetable import PAGE_SHIFT, PAGE_SIZE, PageTable, region_of, vpn_of
from repro.memory.subsystem import MemorySubsystem
from repro.memory.physical import PhysicalMemory, DEFAULT_MEMORY_BYTES
from repro.ucode.routines import MicrocodeLayout, build_layout


@dataclass
class InterruptRequest:
    """One posted interrupt: priority level plus service-routine address."""

    ipl: int
    vector_va: int
    software: bool = False


class InterruptController:
    """Pending-interrupt bookkeeping (the machine's request lines)."""

    def __init__(self):
        self._pending: List[InterruptRequest] = []

    def post(self, request: InterruptRequest) -> None:
        self._pending.append(request)

    def highest_above(self, current_ipl: int) -> Optional[InterruptRequest]:
        if not self._pending:  # checked once per instruction; usually empty
            return None
        deliverable = [r for r in self._pending if r.ipl > current_ipl]
        if not deliverable:
            return None
        return max(deliverable, key=lambda r: r.ipl)

    def acknowledge(self, request: InterruptRequest) -> None:
        self._pending.remove(request)

    @property
    def pending_count(self) -> int:
        return len(self._pending)


class FrameAllocator:
    """Hands out physical page frames above a reserved boundary."""

    def __init__(self, memory_bytes: int, reserved_bytes: int):
        self._next = reserved_bytes >> PAGE_SHIFT
        self._limit = memory_bytes >> PAGE_SHIFT

    def allocate(self) -> int:
        if self._next >= self._limit:
            raise MemoryError("out of physical page frames")
        frame = self._next
        self._next += 1
        return frame

    @property
    def frames_remaining(self) -> int:
        return self._limit - self._next


class VAX780:
    """The simulated machine, with an optional micro-PC monitor attached."""

    #: Physical layout: page tables, PCBs and other OS structures live in
    #: low memory below this boundary; allocatable frames start here.
    RESERVED_PHYSICAL = 2 * 1024 * 1024

    #: Physical addresses of the built-in page tables.
    P0_TABLE_PA = 0x10000
    P1_TABLE_PA = 0x30000
    SYSTEM_TABLE_PA = 0x50000
    TABLE_LENGTH = 8192  # pages mappable per region (4 MB)

    def __init__(
        self,
        memory_bytes: int = DEFAULT_MEMORY_BYTES,
        monitor=None,
        layout: Optional[MicrocodeLayout] = None,
        tracer=None,
    ):
        self.physical = PhysicalMemory(memory_bytes)
        self.memory = MemorySubsystem(physical=self.physical)
        self.layout = layout if layout is not None else build_layout()
        self.events = EventCounters()
        self.monitor = monitor
        #: Optional repro.obs.trace.Tracer.  Like the monitor it is
        #: strictly passive; None (the default) leaves only is-not-None
        #: guards on event paths.
        self.tracer = tracer
        self.memory.tracer = tracer
        self.ebox = EBox(
            memory=self.memory,
            layout=self.layout,
            monitor=monitor,
            events=self.events,
            machine=self,
            tracer=tracer,
        )
        self.interrupts = InterruptController()
        self.frames = FrameAllocator(memory_bytes, self.RESERVED_PHYSICAL)
        self._delivering: Optional[InterruptRequest] = None
        #: SCB: name -> kernel virtual address of the service routine.
        self.scb: Dict[str, int] = {}
        #: OS hooks (the VMS layer overrides these).
        self.pager: Optional[Callable[[int, bool], bool]] = None
        self.context_load_hook: Optional[Callable[[int], None]] = None
        self.rei_hook: Optional[Callable[[], None]] = None
        #: MTPR register number -> callback(value)
        self.mtpr_hooks: Dict[int, Callable[[int], None]] = {}

        self.p0_table = PageTable(self.physical, self.P0_TABLE_PA, self.TABLE_LENGTH)
        self.p1_table = PageTable(self.physical, self.P1_TABLE_PA, self.TABLE_LENGTH)
        self.system_table = PageTable(self.physical, self.SYSTEM_TABLE_PA, self.TABLE_LENGTH)
        self.memory.set_page_table("p0", self.p0_table)
        self.memory.set_page_table("p1", self.p1_table)
        self.memory.set_page_table("system", self.system_table)

    # ------------------------------------------------------------------
    # EBOX hook surface
    # ------------------------------------------------------------------

    def attach_tracer(self, tracer) -> None:
        """Attach (``None``: detach) the passive event tracer everywhere.

        The tracer is referenced from the machine, the memory subsystem
        and the EBOX (which also rebinds a fast path on it); snapshot
        capture/restore uses this to take the tracer out of the pickled
        graph and to wire a live one onto a restored machine."""
        self.tracer = tracer
        self.memory.tracer = tracer
        self.ebox.set_tracer(tracer)

    def attach_compile_events(self, channel) -> None:
        """Attach (``None``: detach) a compile-lifecycle
        :class:`~repro.obs.channel.EventChannel`.  Passive and
        path-neutral — the compiled hot path stays enabled, which is
        the channel's reason to exist (a tracer would turn it off).
        Held only on the EBOX transient state, so snapshots stay
        byte-identical with or without a channel attached."""
        self.ebox.set_compile_events(channel)

    @property
    def compile_events(self):
        return self.ebox._compile_events

    def pending_interrupt(self, current_ipl: int) -> Optional[Tuple[int, int]]:
        request = self.interrupts.highest_above(current_ipl)
        if request is None:
            return None
        self._delivering = request
        return (request.ipl, request.vector_va)

    def acknowledge_interrupt(self) -> None:
        if self._delivering is not None:
            self.interrupts.acknowledge(self._delivering)
            self._delivering = None

    def request_software_interrupt(self, level: int) -> None:
        """MTPR to SIRR: post a software interrupt at ``level``."""
        vector = self.scb.get("software", 0)
        if vector:
            self.interrupts.post(InterruptRequest(ipl=level, vector_va=vector, software=True))

    def scb_vector(self, name: str) -> int:
        return self.scb.get(name, 0)

    def on_mtpr(self, register: int, value: int) -> None:
        """Implementation-defined MTPR targets (OS layer callbacks)."""
        hook = self.mtpr_hooks.get(register)
        if hook is not None:
            hook(value)

    def on_context_load(self, pcb: int) -> None:
        if self.context_load_hook is not None:
            self.context_load_hook(pcb)

    def after_rei(self) -> None:
        if self.rei_hook is not None:
            self.rei_hook()

    def handle_page_fault(self, va: int, write: bool) -> bool:
        """Resolve a page fault; the default pager maps a fresh zero frame."""
        self.events.page_faults += 0  # counted by the EBOX already
        if self.pager is not None:
            return self.pager(va, write)
        return self.map_new_frame(va)

    # ------------------------------------------------------------------
    # mapping and loading helpers
    # ------------------------------------------------------------------

    def _table_for(self, va: int) -> PageTable:
        """The *active* page table for ``va``'s region (after a context
        switch this is the current process's table, not the boot table)."""
        table = self.memory.page_tables[region_of(va)]
        if table is None:
            raise ValueError("no page table active for region of {:#x}".format(va))
        return table

    def map_new_frame(self, va: int, writable: bool = True) -> bool:
        """Map the page containing ``va`` to a newly allocated frame."""
        table = self._table_for(va)
        table.map(vpn_of(va), self.frames.allocate(), writable=writable)
        return True

    def map_range(self, va: int, length: int, writable: bool = True) -> None:
        """Ensure every page of [va, va+length) is mapped."""
        page = va & ~(PAGE_SIZE - 1)
        end = va + length
        while page < end:
            table = self._table_for(page)
            vpn = vpn_of(page)
            if not table.lookup(vpn).valid:
                table.map(vpn, self.frames.allocate(), writable=writable)
            page += PAGE_SIZE

    def write_virtual(self, va: int, payload: bytes) -> None:
        """Store bytes at a virtual address, mapping pages as needed.

        A loader-side backdoor (no cycle accounting): used to install
        programs and initialised data before measurement starts.
        """
        self.map_range(va, len(payload))
        offset = 0
        while offset < len(payload):
            page_va = (va + offset) & ~(PAGE_SIZE - 1)
            entry = self._table_for(page_va).lookup(vpn_of(page_va))
            in_page = min(len(payload) - offset, PAGE_SIZE - ((va + offset) & (PAGE_SIZE - 1)))
            pa = (entry.pfn << PAGE_SHIFT) | ((va + offset) & (PAGE_SIZE - 1))
            self.physical.load(pa, payload[offset : offset + in_page])
            offset += in_page

    def read_virtual(self, va: int, size: int) -> int:
        """Loader-side read (no cycle accounting), little-endian."""
        result = 0
        for index in range(size):
            page_va = (va + index) & ~(PAGE_SIZE - 1)
            entry = self._table_for(page_va).lookup(vpn_of(page_va))
            if not entry.valid:
                raise ValueError("read_virtual of unmapped page {:#x}".format(page_va))
            pa = (entry.pfn << PAGE_SHIFT) | ((va + index) & (PAGE_SIZE - 1))
            result |= self.physical.read(pa, 1) << (8 * index)
        return result

    #: Default user stack top: near the top of the 4 MB the built-in P0
    #: table maps.
    DEFAULT_STACK_TOP = 0x003F_0000

    def load_program(self, image: bytes, origin: int, stack_top: int = DEFAULT_STACK_TOP) -> None:
        """Install ``image`` at virtual ``origin`` and point the CPU at it."""
        self.write_virtual(origin, image)
        self.map_range(stack_top - 8 * PAGE_SIZE, 8 * PAGE_SIZE)
        self.ebox.reset(origin, sp=stack_top)

    def run(self, max_instructions: int = 1_000_000, max_cycles: Optional[int] = None) -> int:
        return self.ebox.run(max_instructions=max_instructions, max_cycles=max_cycles)

    # ------------------------------------------------------------------
    # Figure 1
    # ------------------------------------------------------------------

    def components(self) -> Dict[str, object]:
        """The machine's structural inventory (Figure 1's boxes)."""
        return {
            "i_fetch": self.ebox.ib,
            "i_decode": self.ebox,  # tightly coupled to the EBOX, as in 2.1
            "ebox": self.ebox,
            "control_store": self.layout.store,
            "translation_buffer": self.memory.tb,
            "cache": self.memory.cache,
            "write_buffer": self.memory.write_buffer,
            "sbi": self.memory.sbi,
            "memory": self.physical,
            "monitor": self.monitor,
        }

    def block_diagram(self) -> str:
        """Render Figure 1 (the VAX-11/780 block diagram) as ASCII art."""
        cache = self.memory.cache
        monitor_note = "uPC monitor: attached" if self.monitor else "uPC monitor: (none)"
        return "\n".join(
            [
                "                 VAX-11/780 Block Diagram (Figure 1)",
                "  +---------------------- CPU pipeline ----------------------+",
                "  |  +---------+    +----------+    +---------------------+  |",
                "  |  | I-Fetch |--->| I-Decode |--->|        EBOX         |  |",
                "  |  | (8-byte |    | (dispatch|    | 16K ucontrol store  |  |",
                "  |  |   IB)   |<---|  to EBOX)|<---|  200ns microcycle   |  |",
                "  |  +----+----+    +----------+    +----+----------+----+  |",
                "  |       |                              |          |       |",
                "  +-------|------------------------------|----------|-------+",
                "          | I-stream reads        D-reads|          | writes",
                "          v                              v          v",
                "  +-------+------------------------------+---+  +---+------+",
                "  |        Translation Buffer (128 entries,  |  |  4-byte  |",
                "  |        64 system + 64 process)           |  |  write   |",
                "  +-------------------+-----------------------+  | buffer  |",
                "                      | physical address        +---+------+",
                "                      v                              |",
                "  +-------------------+-------------------------+    |",
                "  |  Cache: {:d} KB, {}-way, {}-byte blocks,       |    |".format(
                    cache.sets * cache.ways * cache.block_size // 1024,
                    cache.ways,
                    cache.block_size,
                ),
                "  |  write-through, no write-allocate           |    |",
                "  +-------------------+-------------------------+    |",
                "                      | read/write SBI data          |",
                "                      v                              v",
                "  +--------------------------------------------------------+",
                "  |           SBI (Synchronous Backplane Interconnect)     |",
                "  +---------------------------+----------------------------+",
                "                              |",
                "                  +-----------+-----------+",
                "                  |  Memory ({:d} MB)        |".format(
                    self.physical.size // (1024 * 1024)
                ),
                "                  +-----------------------+",
                "  [{}]".format(monitor_note),
            ]
        )

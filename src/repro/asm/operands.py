"""Operand syntax for the mini VAX assembler.

Supported forms (a practical subset of DEC MACRO-32 syntax):

=====================  =====================================================
``R5`` / ``SP``        register mode
``(R5)``               register deferred
``-(R5)``              autodecrement
``(R5)+``              autoincrement
``@(R5)+``             autoincrement deferred
``12(R5)``             displacement (B^/W^/L^ prefix forces the width)
``@12(R5)``            displacement deferred
``#5``                 short literal when it fits (0..63), else immediate
``I^#5``               forced immediate
``@#0x1234``           absolute
``label``              PC-relative (data refs) or branch displacement
``(R5)[R3]``           indexed (any base mode + index register)
=====================  =====================================================

Numeric literals accept decimal and ``0x`` hex.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Optional

from repro.isa.registers import Reg
from repro.isa.specifiers import AddressingMode

_REGISTER_NAMES = {r.name: int(r) for r in Reg}
_REGISTER_NAMES.update({"R12": 12, "R13": 13, "R14": 14, "R15": 15})


class OperandSyntaxError(ValueError):
    """Raised when an operand string cannot be parsed."""


@dataclass
class Operand:
    """A parsed assembler operand, pre-encoding.

    ``mode`` may be None for label references whose final mode (branch
    displacement vs. PC-relative) depends on the operand slot they fill.
    """

    mode: Optional[AddressingMode]
    register: Optional[int] = None
    value: int = 0
    label: Optional[str] = None
    index_register: Optional[int] = None
    forced_width: Optional[int] = None  # 1/2/4 from B^/W^/L^ prefixes

    @property
    def is_label(self) -> bool:
        return self.label is not None


def _parse_register(text: str) -> Optional[int]:
    return _REGISTER_NAMES.get(text.strip().upper())


def _parse_number(text: str) -> int:
    text = text.strip()
    negative = text.startswith("-")
    if negative:
        text = text[1:]
    if text.lower().startswith("0x"):
        value = int(text, 16)
    elif not text.isdigit():
        raise OperandSyntaxError("bad numeric literal {!r}".format(text))
    else:
        value = int(text, 10)
    return -value if negative else value


_DISPLACEMENT_RE = re.compile(
    r"^(?P<at>@)?(?:(?P<width>[BWL])\^)?(?P<disp>-?(?:0[xX][0-9a-fA-F]+|\d+))?\((?P<reg>\w+)\)(?P<post>\+)?$"
)

_WIDTHS = {"B": 1, "W": 2, "L": 4}


def parse_operand(text: str) -> Operand:
    """Parse one operand string into an :class:`Operand`."""
    text = text.strip()
    if not text:
        raise OperandSyntaxError("empty operand")

    # Indexed suffix: base[Rx]
    index_register = None
    if text.endswith("]"):
        open_bracket = text.rindex("[")
        index_register = _parse_register(text[open_bracket + 1 : -1])
        if index_register is None:
            raise OperandSyntaxError("bad index register in {!r}".format(text))
        text = text[:open_bracket].strip()

    operand = _parse_base_operand(text)
    operand.index_register = index_register
    if index_register is not None and operand.mode in (
        AddressingMode.SHORT_LITERAL,
        AddressingMode.REGISTER,
        AddressingMode.IMMEDIATE,
    ):
        raise OperandSyntaxError("mode {} cannot be indexed".format(operand.mode))
    return operand


def _parse_base_operand(text: str) -> Operand:
    upper = text.upper()

    register = _parse_register(text)
    if register is not None:
        return Operand(AddressingMode.REGISTER, register=register)

    # Literals / immediates.
    if upper.startswith("S^#"):
        value = _parse_number(text[3:])
        if not 0 <= value <= 63:
            raise OperandSyntaxError("short literal out of range: {}".format(value))
        return Operand(AddressingMode.SHORT_LITERAL, value=value)
    if upper.startswith("I^#"):
        return Operand(AddressingMode.IMMEDIATE, value=_parse_number(text[3:]))
    if text.startswith("#"):
        value = _parse_number(text[1:])
        if 0 <= value <= 63:
            return Operand(AddressingMode.SHORT_LITERAL, value=value)
        return Operand(AddressingMode.IMMEDIATE, value=value)

    # Absolute.
    if text.startswith("@#"):
        return Operand(AddressingMode.ABSOLUTE, value=_parse_number(text[2:]))

    # Autodecrement.
    if text.startswith("-(") and text.endswith(")"):
        register = _parse_register(text[2:-1])
        if register is None:
            raise OperandSyntaxError("bad register in {!r}".format(text))
        return Operand(AddressingMode.AUTODECREMENT, register=register)

    match = _DISPLACEMENT_RE.match(text)
    if match:
        register = _parse_register(match.group("reg"))
        if register is None:
            raise OperandSyntaxError("bad register in {!r}".format(text))
        deferred = match.group("at") is not None
        post_increment = match.group("post") is not None
        disp_text = match.group("disp")
        width = _WIDTHS.get(match.group("width") or "", None)

        if post_increment:
            if disp_text is not None or width is not None:
                raise OperandSyntaxError("autoincrement takes no displacement")
            mode = (
                AddressingMode.AUTOINCREMENT_DEFERRED
                if deferred
                else AddressingMode.AUTOINCREMENT
            )
            return Operand(mode, register=register)

        if disp_text is None and not deferred and width is None:
            return Operand(AddressingMode.REGISTER_DEFERRED, register=register)

        displacement = _parse_number(disp_text) if disp_text is not None else 0
        if disp_text is None and deferred:
            # "@(Rn)" with no displacement: displacement-deferred of zero.
            displacement = 0
        mode = _displacement_mode(displacement, width, deferred)
        return Operand(mode, register=register, value=displacement, forced_width=width)

    # Anything left that looks like an identifier is a label reference;
    # its mode is fixed later by the assembler based on the operand slot.
    if re.match(r"^[A-Za-z_.$][\w.$]*$", text):
        return Operand(None, label=text)

    # Bare number: treat as absolute address reference.
    try:
        return Operand(AddressingMode.ABSOLUTE, value=_parse_number(text))
    except OperandSyntaxError:
        raise OperandSyntaxError("cannot parse operand {!r}".format(text)) from None


def _displacement_mode(displacement: int, width: Optional[int], deferred: bool) -> AddressingMode:
    if width is None:
        if -128 <= displacement <= 127:
            width = 1
        elif -32768 <= displacement <= 32767:
            width = 2
        else:
            width = 4
    plain = {
        1: AddressingMode.BYTE_DISPLACEMENT,
        2: AddressingMode.WORD_DISPLACEMENT,
        4: AddressingMode.LONG_DISPLACEMENT,
    }
    defer = {
        1: AddressingMode.BYTE_DISPLACEMENT_DEFERRED,
        2: AddressingMode.WORD_DISPLACEMENT_DEFERRED,
        4: AddressingMode.LONG_DISPLACEMENT_DEFERRED,
    }
    return (defer if deferred else plain)[width]

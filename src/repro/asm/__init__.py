"""A small two-pass VAX assembler.

Lets the examples, tests and workload generator express programs in VAX
assembly syntax (``MOVL #1, R0``; ``BNEQ loop``; ``MOVC3 #36, (R1), (R2)``)
and produces the exact instruction byte streams the simulated 11/780
decodes and executes.
"""

from repro.asm.operands import Operand, parse_operand
from repro.asm.assembler import Assembler, AssemblyError

__all__ = ["Assembler", "AssemblyError", "Operand", "parse_operand"]

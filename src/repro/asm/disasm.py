"""A VAX disassembler.

Decodes instruction bytes back into mnemonics and operand text in the
same syntax :mod:`repro.asm.operands` parses, so that (for all
non-label-dependent operands) ``assemble(disassemble(bytes)) == bytes``.
Used by the debugging examples and by the round-trip property tests that
pin the encoder and decoder against each other.

Like any linear-sweep VAX disassembler, it cannot tell CASE dispatch
tables (raw words in the instruction stream) from code; callers who know
a table's extent should skip it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional, Tuple

from repro.isa.datatypes import DataType, f_floating_decode
from repro.isa.opcodes import OPCODES, Opcode
from repro.isa.registers import Reg
from repro.isa.specifiers import AccessType, AddressingMode
from repro.cpu.operands import decode_specifier

_REGISTER_NAMES = {12: "AP", 13: "FP", 14: "SP", 15: "PC"}


class DisassemblyError(Exception):
    """Undecodable byte where an opcode or specifier was expected."""


@dataclass
class DisassembledInstruction:
    """One decoded instruction."""

    address: int
    opcode: Opcode
    operands: List[str]
    length: int
    raw: bytes

    @property
    def text(self) -> str:
        if not self.operands:
            return self.opcode.mnemonic
        return "{} {}".format(self.opcode.mnemonic, ", ".join(self.operands))

    def __str__(self) -> str:
        return "{:08x}  {:<20} {}".format(self.address, self.raw.hex(), self.text)


def _register_name(number: int) -> str:
    return _REGISTER_NAMES.get(number, "R{}".format(number))


class Disassembler:
    """Decodes instructions from a byte source.

    ``fetch(address)`` must return the byte at ``address``; any flat
    ``bytes`` object can be adapted with :func:`from_bytes`.
    """

    def __init__(self, fetch: Callable[[int], int]):
        self.fetch = fetch

    @classmethod
    def from_bytes(cls, image: bytes, origin: int = 0) -> "Disassembler":
        def fetch(address: int) -> int:
            index = address - origin
            if not 0 <= index < len(image):
                raise DisassemblyError("address {:#x} outside image".format(address))
            return image[index]

        return cls(fetch)

    def disassemble(self, address: int) -> DisassembledInstruction:
        """Decode the instruction at ``address``."""
        cursor = [address]

        def take(count: int) -> bytes:
            data = bytes(self.fetch(cursor[0] + i) for i in range(count))
            cursor[0] += count
            return data

        opcode_byte = take(1)[0]
        opcode = OPCODES.get(opcode_byte)
        if opcode is None:
            raise DisassemblyError(
                "no opcode {:#04x} at {:#x}".format(opcode_byte, address)
            )

        operands = []
        for spec in opcode.operands:
            if spec.access is AccessType.BRANCH:
                width = spec.dtype.size
                raw = int.from_bytes(take(width), "little")
                if raw & (1 << (8 * width - 1)):
                    raw -= 1 << (8 * width)
                target = (cursor[0] + raw) & 0xFFFFFFFF
                operands.append("0x{:x}".format(target))
            else:
                decoded = decode_specifier(take, spec.dtype)
                operands.append(self._render(decoded, spec.dtype, cursor[0]))

        length = cursor[0] - address
        raw = bytes(self.fetch(address + i) for i in range(length))
        return DisassembledInstruction(
            address=address, opcode=opcode, operands=operands, length=length, raw=raw
        )

    def walk(self, address: int, count: Optional[int] = None) -> Iterator[DisassembledInstruction]:
        """Linear sweep from ``address``; stops after ``count`` or HALT."""
        emitted = 0
        while count is None or emitted < count:
            instruction = self.disassemble(address)
            yield instruction
            emitted += 1
            address += instruction.length
            if instruction.opcode.mnemonic == "HALT" and count is None:
                return

    # -- rendering -----------------------------------------------------------

    def _render(self, decoded, dtype: DataType, pc_after: int) -> str:
        mode = decoded.mode
        base = self._render_base(decoded, dtype, pc_after)
        if decoded.index_register is not None:
            return "{}[{}]".format(base, _register_name(decoded.index_register))
        return base

    def _render_base(self, decoded, dtype: DataType, pc_after: int) -> str:
        mode = decoded.mode
        register = decoded.register
        extension = decoded.extension
        if mode is AddressingMode.SHORT_LITERAL:
            return "S^#{}".format(extension)
        if mode is AddressingMode.REGISTER:
            return _register_name(register)
        if mode is AddressingMode.REGISTER_DEFERRED:
            return "({})".format(_register_name(register))
        if mode is AddressingMode.AUTOINCREMENT:
            return "({})+".format(_register_name(register))
        if mode is AddressingMode.AUTODECREMENT:
            return "-({})".format(_register_name(register))
        if mode is AddressingMode.AUTOINCREMENT_DEFERRED:
            return "@({})+".format(_register_name(register))
        if mode is AddressingMode.IMMEDIATE:
            if dtype is DataType.F_FLOAT:
                value = f_floating_decode(extension)
                if value == int(value):
                    return "I^#{}".format(int(value))
                return "I^#<f:{:#010x}>".format(extension)  # not re-parseable
            return "I^#{}".format(extension)
        if mode is AddressingMode.ABSOLUTE:
            return "@#0x{:x}".format(extension)

        signed = extension if extension < 0x8000_0000 else extension - 0x1_0000_0000
        widths = {
            AddressingMode.BYTE_DISPLACEMENT: ("B", False, register),
            AddressingMode.WORD_DISPLACEMENT: ("W", False, register),
            AddressingMode.LONG_DISPLACEMENT: ("L", False, register),
            AddressingMode.BYTE_DISPLACEMENT_DEFERRED: ("B", True, register),
            AddressingMode.WORD_DISPLACEMENT_DEFERRED: ("W", True, register),
            AddressingMode.LONG_DISPLACEMENT_DEFERRED: ("L", True, register),
            AddressingMode.BYTE_RELATIVE: ("B", False, 15),
            AddressingMode.WORD_RELATIVE: ("W", False, 15),
            AddressingMode.LONG_RELATIVE: ("L", False, 15),
            AddressingMode.BYTE_RELATIVE_DEFERRED: ("B", True, 15),
            AddressingMode.WORD_RELATIVE_DEFERRED: ("W", True, 15),
            AddressingMode.LONG_RELATIVE_DEFERRED: ("L", True, 15),
        }
        if mode in widths:
            width, deferred, reg_number = widths[mode]
            text = "{}^{}({})".format(width, signed, _register_name(reg_number))
            return "@" + text if deferred else text
        raise DisassemblyError("cannot render mode {}".format(mode))


def disassemble_image(image: bytes, origin: int = 0, count: Optional[int] = None):
    """Convenience: linear-sweep a flat image; returns a list."""
    disassembler = Disassembler.from_bytes(image, origin=origin)
    return list(disassembler.walk(origin, count=count))

"""A two-pass assembler for the VAX opcode subset.

Pass 1 lays out items and assigns label addresses (all encodings here are
fixed-size once the operand is parsed, so layout is exact); pass 2 encodes
bytes and resolves label references.

Label references resolve according to the operand slot that uses them:
branch-displacement slots get raw signed byte/word displacements, address
and data slots get long PC-relative specifiers (mode EF).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.isa.datatypes import DataType, f_floating_encode
from repro.isa.opcodes import Opcode, opcode_by_mnemonic
from repro.isa.specifiers import AccessType, AddressingMode, OperandSpec
from repro.asm.operands import Operand, parse_operand


class AssemblyError(Exception):
    """Raised for unencodable operands, unknown labels, or range overflow."""


_IMMEDIATE_SIZES = {
    DataType.BYTE: 1,
    DataType.WORD: 2,
    DataType.LONG: 4,
    DataType.F_FLOAT: 4,
    DataType.QUAD: 8,
    DataType.PACKED: 4,
    DataType.VARIABLE_FIELD: 4,
}

_MODE_HIGH_NIBBLE = {
    AddressingMode.REGISTER: 0x5,
    AddressingMode.REGISTER_DEFERRED: 0x6,
    AddressingMode.AUTODECREMENT: 0x7,
    AddressingMode.AUTOINCREMENT: 0x8,
    AddressingMode.AUTOINCREMENT_DEFERRED: 0x9,
    AddressingMode.BYTE_DISPLACEMENT: 0xA,
    AddressingMode.BYTE_DISPLACEMENT_DEFERRED: 0xB,
    AddressingMode.WORD_DISPLACEMENT: 0xC,
    AddressingMode.WORD_DISPLACEMENT_DEFERRED: 0xD,
    AddressingMode.LONG_DISPLACEMENT: 0xE,
    AddressingMode.LONG_DISPLACEMENT_DEFERRED: 0xF,
}


@dataclass
class _Instruction:
    address: int
    opcode: Opcode
    operands: List[Operand]


@dataclass
class _Data:
    address: int
    payload: bytes


@dataclass
class _LabelWordRef:
    """A `.word label - base` style table entry (for CASE tables)."""

    address: int
    label: str
    base_label: str


@dataclass
class _LabelLongRef:
    """A `.long label` absolute-address entry (for pointer tables)."""

    address: int
    label: str


class Assembler:
    """Two-pass assembler producing a flat byte image plus a symbol table.

    Usage::

        asm = Assembler(origin=0x200)
        asm.label("loop")
        asm.instr("ADDL2", "#1", "R0")
        asm.instr("SOBGTR", "R1", "loop")
        image = asm.assemble()
    """

    def __init__(self, origin: int = 0):
        self.origin = origin
        self._cursor = origin
        self._items: List[Union[_Instruction, _Data, _LabelWordRef, _LabelLongRef]] = []
        self.symbols: Dict[str, int] = {}
        #: One ``(address, mnemonic, operand_texts)`` tuple per
        #: :meth:`instr` call, in program order.  Analytic consumers
        #: (repro.validate's cost walker) re-derive per-instruction
        #: expectations from exactly what was assembled instead of
        #: keeping a parallel transcript that can drift.
        self.listing: List[Tuple[int, str, Tuple[str, ...]]] = []

    # -- layout ------------------------------------------------------------

    @property
    def here(self) -> int:
        """The current layout address."""
        return self._cursor

    def label(self, name: str) -> int:
        """Define ``name`` at the current address and return that address."""
        if name in self.symbols:
            raise AssemblyError("duplicate label {!r}".format(name))
        self.symbols[name] = self._cursor
        return self._cursor

    def instr(self, mnemonic: str, *operand_texts: str) -> None:
        """Append one instruction; operands are parsed from strings."""
        opcode = opcode_by_mnemonic(mnemonic)
        if len(operand_texts) != len(opcode.operands):
            raise AssemblyError(
                "{} takes {} operands, got {}".format(
                    opcode.mnemonic, len(opcode.operands), len(operand_texts)
                )
            )
        operands = [parse_operand(text) for text in operand_texts]
        item = _Instruction(self._cursor, opcode, operands)
        self._items.append(item)
        self.listing.append((self._cursor, opcode.mnemonic, tuple(operand_texts)))
        self._cursor += self._instruction_size(item)

    def byte(self, *values: int) -> None:
        self._append_data(bytes(v & 0xFF for v in values))

    def word(self, *values: int) -> None:
        self._append_data(b"".join(struct.pack("<H", v & 0xFFFF) for v in values))

    def long(self, *values: int) -> None:
        self._append_data(b"".join(struct.pack("<I", v & 0xFFFFFFFF) for v in values))

    def ascii(self, text: str) -> None:
        self._append_data(text.encode("latin-1"))

    def space(self, count: int, fill: int = 0) -> None:
        self._append_data(bytes([fill & 0xFF]) * count)

    def align(self, boundary: int) -> None:
        remainder = self._cursor % boundary
        if remainder:
            self.space(boundary - remainder)

    def word_ref(self, label: str, base_label: str) -> None:
        """Append a 16-bit ``label - base_label`` entry (CASE dispatch tables)."""
        self._items.append(_LabelWordRef(self._cursor, label, base_label))
        self._cursor += 2

    def long_ref(self, label: str) -> None:
        """Append the 32-bit absolute address of ``label`` (pointer tables)."""
        self._items.append(_LabelLongRef(self._cursor, label))
        self._cursor += 4

    def _append_data(self, payload: bytes) -> None:
        self._items.append(_Data(self._cursor, payload))
        self._cursor += len(payload)

    # -- sizing ------------------------------------------------------------

    def _instruction_size(self, item: _Instruction) -> int:
        size = 1  # opcode byte
        for operand, spec in zip(item.operands, item.opcode.operands):
            size += self._operand_size(operand, spec)
        return size

    def _operand_size(self, operand: Operand, spec: OperandSpec) -> int:
        if spec.access is AccessType.BRANCH:
            if operand.label is None and operand.mode is not None:
                raise AssemblyError("branch targets must be labels")
            return spec.dtype.size  # raw displacement, no specifier byte
        size = 1 if operand.index_register is None else 2
        if operand.label is not None:
            return size + 5 - 1  # long-relative: EF + 4 bytes (EF counted above)
        mode = operand.mode
        if mode is AddressingMode.SHORT_LITERAL:
            return size
        if mode is AddressingMode.IMMEDIATE:
            return size + _IMMEDIATE_SIZES[spec.dtype]
        if mode is AddressingMode.ABSOLUTE:
            return size + 4
        return size + mode.displacement_size

    # -- encoding ----------------------------------------------------------

    def assemble(self) -> bytes:
        """Run pass 2 and return the image starting at :attr:`origin`."""
        image = bytearray(self._cursor - self.origin)

        def emit(address: int, payload: bytes) -> None:
            offset = address - self.origin
            image[offset : offset + len(payload)] = payload

        for item in self._items:
            if isinstance(item, _Data):
                emit(item.address, item.payload)
            elif isinstance(item, _LabelWordRef):
                delta = self._resolve(item.label) - self._resolve(item.base_label)
                emit(item.address, struct.pack("<h", delta))
            elif isinstance(item, _LabelLongRef):
                emit(item.address, struct.pack("<I", self._resolve(item.label) & 0xFFFFFFFF))
            else:
                emit(item.address, self._encode_instruction(item))
        return bytes(image)

    def _resolve(self, label: str) -> int:
        try:
            return self.symbols[label]
        except KeyError:
            raise AssemblyError("undefined label {!r}".format(label)) from None

    def _encode_instruction(self, item: _Instruction) -> bytes:
        out = bytearray([item.opcode.code])
        cursor = item.address + 1
        for operand, spec in zip(item.operands, item.opcode.operands):
            encoded = self._encode_operand(operand, spec, cursor)
            out.extend(encoded)
            cursor += len(encoded)
        return bytes(out)

    def _encode_operand(self, operand: Operand, spec: OperandSpec, cursor: int) -> bytes:
        if spec.access is AccessType.BRANCH:
            target = self._resolve(operand.label)
            width = spec.dtype.size
            displacement = target - (cursor + width)
            limit = 1 << (8 * width - 1)
            if not -limit <= displacement < limit:
                raise AssemblyError(
                    "branch displacement {} out of range for {}".format(
                        displacement, spec.dtype
                    )
                )
            fmt = "<b" if width == 1 else "<h"
            return struct.pack(fmt, displacement)

        prefix = b""
        if operand.index_register is not None:
            prefix = bytes([0x40 | operand.index_register])
            cursor += 1

        if operand.label is not None:
            target = self._resolve(operand.label)
            displacement = target - (cursor + 5)
            return prefix + bytes([0xEF]) + struct.pack("<i", displacement)

        mode = operand.mode
        if mode is AddressingMode.SHORT_LITERAL:
            return prefix + bytes([operand.value & 0x3F])
        if mode is AddressingMode.REGISTER and spec.dtype is DataType.QUAD:
            pass  # quad register operands use Rn..Rn+1; encoding is unchanged
        if mode is AddressingMode.IMMEDIATE:
            return prefix + bytes([0x8F]) + self._immediate_bytes(operand.value, spec.dtype)
        if mode is AddressingMode.ABSOLUTE:
            return prefix + bytes([0x9F]) + struct.pack("<I", operand.value & 0xFFFFFFFF)

        nibble = _MODE_HIGH_NIBBLE.get(mode)
        if nibble is None:
            raise AssemblyError("cannot encode mode {}".format(mode))
        specifier = bytes([(nibble << 4) | (operand.register & 0xF)])
        disp_size = mode.displacement_size
        if disp_size == 0:
            return prefix + specifier
        fmt = {1: "<b", 2: "<h", 4: "<i"}[disp_size]
        limit = 1 << (8 * disp_size - 1)
        if not -limit <= operand.value < limit:
            raise AssemblyError("displacement {} too wide".format(operand.value))
        return prefix + specifier + struct.pack(fmt, operand.value)

    @staticmethod
    def _immediate_bytes(value, dtype: DataType) -> bytes:
        if dtype is DataType.F_FLOAT:
            image = f_floating_encode(float(value))
            return struct.pack("<I", image)
        size = _IMMEDIATE_SIZES[dtype]
        mask = (1 << (8 * size)) - 1
        return int(value & mask).to_bytes(size, "little")
